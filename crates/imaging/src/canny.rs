//! Canny edge detection.
//!
//! The paper's edge feature is an 18-bin edge-direction histogram computed
//! from "edge images" produced by "a Canny edge detector" (\[16\] in the
//! paper). This is the full classical pipeline:
//!
//! 1. Gaussian smoothing (`sigma`),
//! 2. Sobel gradients,
//! 3. non-maximum suppression along the quantized gradient direction,
//! 4. double thresholding + hysteresis (weak edges survive only when
//!    8-connected to a strong edge).
//!
//! The output [`EdgeMap`] keeps the gradient direction of every edge pixel
//! so the histogram extractor does not have to recompute gradients.

use crate::convolve::{gaussian_blur, gradient_magnitude, sobel};
use crate::image::GrayImage;

/// Tuning parameters for [`canny`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CannyParams {
    /// Standard deviation of the pre-smoothing Gaussian.
    pub sigma: f32,
    /// Low hysteresis threshold as a fraction of the maximum gradient
    /// magnitude (e.g. `0.1`).
    pub low_ratio: f32,
    /// High hysteresis threshold as a fraction of the maximum gradient
    /// magnitude (e.g. `0.25`).
    pub high_ratio: f32,
}

impl Default for CannyParams {
    fn default() -> Self {
        // sigma 1.4 is the textbook choice; ratio thresholds adapt to image
        // contrast, which matters because synthetic categories differ in
        // edge strength by design.
        Self {
            sigma: 1.4,
            low_ratio: 0.10,
            high_ratio: 0.25,
        }
    }
}

/// Result of Canny edge detection.
#[derive(Clone, Debug)]
pub struct EdgeMap {
    width: usize,
    height: usize,
    /// `true` where the pixel is an edge.
    edges: Vec<bool>,
    /// Gradient direction in radians in `[0, 2π)`, valid only at edge pixels.
    directions: Vec<f32>,
}

impl EdgeMap {
    /// Map width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Map height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Whether the pixel at `(x, y)` is an edge.
    #[inline]
    pub fn is_edge(&self, x: usize, y: usize) -> bool {
        self.edges[y * self.width + x]
    }

    /// Gradient direction (radians, `[0, 2π)`) at `(x, y)`; meaningful only
    /// where [`Self::is_edge`] is `true`.
    #[inline]
    pub fn direction(&self, x: usize, y: usize) -> f32 {
        self.directions[y * self.width + x]
    }

    /// Number of edge pixels.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().filter(|&&e| e).count()
    }

    /// Iterates over `(x, y, direction)` of all edge pixels in row-major order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        let w = self.width;
        self.edges
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e)
            .map(move |(i, _)| (i % w, i / w, self.directions[i]))
    }

    /// Renders the edge map as a black/white [`GrayImage`] (1.0 = edge),
    /// handy for debugging and example output.
    pub fn to_gray(&self) -> GrayImage {
        let data = self
            .edges
            .iter()
            .map(|&e| if e { 1.0 } else { 0.0 })
            .collect();
        GrayImage::from_vec(self.width, self.height, data)
    }
}

/// Runs the Canny detector over a gray image.
///
/// # Panics
/// Panics if `params` are out of range (`low_ratio >= high_ratio`, ratios
/// outside `(0, 1)`, non-positive sigma).
pub fn canny(img: &GrayImage, params: CannyParams) -> EdgeMap {
    assert!(params.sigma > 0.0, "sigma must be positive");
    assert!(
        params.low_ratio > 0.0 && params.high_ratio < 1.0 && params.low_ratio < params.high_ratio,
        "thresholds must satisfy 0 < low < high < 1"
    );
    let w = img.width();
    let h = img.height();

    let smoothed = gaussian_blur(img, params.sigma);
    let (gx, gy) = sobel(&smoothed);
    let mag = gradient_magnitude(&gx, &gy);

    let max_mag = mag.as_slice().iter().cloned().fold(0.0f32, f32::max);
    let mut edges = vec![false; w * h];
    let mut directions = vec![0.0f32; w * h];

    if max_mag <= f32::EPSILON {
        // Perfectly flat image: no edges at all.
        return EdgeMap {
            width: w,
            height: h,
            edges,
            directions,
        };
    }
    let high = params.high_ratio * max_mag;
    let low = params.low_ratio * max_mag;

    // Non-maximum suppression: a pixel survives when its magnitude is a
    // local maximum along the (quantized) gradient direction.
    let mut nms = vec![0.0f32; w * h];
    for y in 0..h {
        for x in 0..w {
            let m = mag.get(x, y);
            if m < low {
                continue; // cannot become an edge; skip the neighbor lookups
            }
            let dir = gy.get(x, y).atan2(gx.get(x, y)); // (-π, π]
            directions[y * w + x] = dir.rem_euclid(std::f32::consts::TAU);
            // Quantize into 4 orientations (0°, 45°, 90°, 135° modulo 180°).
            let angle = dir.rem_euclid(std::f32::consts::PI);
            let sector = ((angle / std::f32::consts::PI * 4.0).round() as usize) % 4;
            let (dx, dy): (isize, isize) = match sector {
                0 => (1, 0),  // gradient ~horizontal → compare left/right
                1 => (1, 1),  // 45°
                2 => (0, 1),  // vertical
                _ => (-1, 1), // 135°
            };
            let m1 = mag.get_clamped(x as isize + dx, y as isize + dy);
            let m2 = mag.get_clamped(x as isize - dx, y as isize - dy);
            if m >= m1 && m >= m2 {
                nms[y * w + x] = m;
            }
        }
    }

    // Double threshold + hysteresis via an explicit stack (BFS over strong
    // seeds, expanding into weak pixels).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if nms[y * w + x] >= high && !edges[y * w + x] {
                edges[y * w + x] = true;
                stack.push((x, y));
                while let Some((cx, cy)) = stack.pop() {
                    for ny in cy.saturating_sub(1)..=(cy + 1).min(h - 1) {
                        for nx in cx.saturating_sub(1)..=(cx + 1).min(w - 1) {
                            let idx = ny * w + nx;
                            if !edges[idx] && nms[idx] >= low {
                                edges[idx] = true;
                                stack.push((nx, ny));
                            }
                        }
                    }
                }
            }
        }
    }

    EdgeMap {
        width: w,
        height: h,
        edges,
        directions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_image(w: usize, h: usize) -> GrayImage {
        let mut img = GrayImage::new(w, h);
        for y in 0..h {
            for x in w / 2..w {
                img.set(x, y, 1.0);
            }
        }
        img
    }

    #[test]
    fn flat_image_has_no_edges() {
        let img = GrayImage::filled(16, 16, 0.42);
        let map = canny(&img, CannyParams::default());
        assert_eq!(map.edge_count(), 0);
    }

    #[test]
    fn vertical_step_produces_vertical_edge_line() {
        let img = step_image(32, 32);
        let map = canny(&img, CannyParams::default());
        assert!(map.edge_count() > 0);
        // All edges should hug the step column (x near 15/16), away from borders.
        for (x, _y, dir) in map.iter_edges() {
            assert!((13..=18).contains(&x), "edge at unexpected x={x}");
            // Gradient direction should be horizontal (≈ 0 or π).
            let d = dir.rem_euclid(std::f32::consts::PI);
            assert!(
                !(0.3..=std::f32::consts::PI - 0.3).contains(&d),
                "direction {d} not horizontal"
            );
        }
    }

    #[test]
    fn horizontal_step_direction_is_vertical() {
        let mut img = GrayImage::new(32, 32);
        for y in 16..32 {
            for x in 0..32 {
                img.set(x, y, 1.0);
            }
        }
        let map = canny(&img, CannyParams::default());
        assert!(map.edge_count() > 0);
        for (_x, y, dir) in map.iter_edges() {
            assert!((13..=18).contains(&y));
            let d = dir.rem_euclid(std::f32::consts::PI);
            assert!(
                (d - std::f32::consts::FRAC_PI_2).abs() < 0.3,
                "direction {d} not vertical"
            );
        }
    }

    #[test]
    fn edge_thinning_yields_thin_lines() {
        // NMS should keep the edge roughly one or two pixels thick: the count
        // must be close to the image height, not to height × blur width.
        let img = step_image(64, 64);
        let map = canny(&img, CannyParams::default());
        let count = map.edge_count();
        assert!((60..=140).contains(&count), "edge count {count} not thin");
    }

    #[test]
    fn hysteresis_connects_weak_to_strong() {
        // A vertical step whose contrast tapers from strong (top) to weak
        // (bottom) along a single straight edge — no corner, so non-maximum
        // suppression cannot sever connectivity. Hysteresis keeps the weak
        // tail because it is 8-connected to strong seeds; raising the low
        // threshold above the tail strength prunes it.
        let mut img = GrayImage::new(24, 24);
        for y in 0..24 {
            let t = y as f32 / 23.0;
            let contrast = 1.0 - 0.65 * t; // 1.0 at top → 0.35 at bottom
            for x in 12..24 {
                img.set(x, y, contrast);
            }
        }
        let keep = canny(
            &img,
            CannyParams {
                sigma: 1.0,
                low_ratio: 0.08,
                high_ratio: 0.5,
            },
        );
        let lower_kept = keep.iter_edges().filter(|&(_, y, _)| y > 18).count();
        assert!(lower_kept > 0, "weak tail should survive via hysteresis");

        let cut = canny(
            &img,
            CannyParams {
                sigma: 1.0,
                low_ratio: 0.45,
                high_ratio: 0.5,
            },
        );
        let lower_cut = cut.iter_edges().filter(|&(_, y, _)| y > 18).count();
        assert!(
            lower_cut < lower_kept,
            "raising the low threshold should prune the weak tail ({lower_cut} vs {lower_kept})"
        );
    }

    #[test]
    fn higher_thresholds_never_add_edges() {
        let mut img = GrayImage::new(32, 32);
        // Add a few boxes of different contrast.
        for (x0, contrast) in [(4usize, 0.9f32), (16, 0.4)] {
            for y in 8..24 {
                for x in x0..x0 + 6 {
                    img.set(x, y, contrast);
                }
            }
        }
        let loose = canny(
            &img,
            CannyParams {
                sigma: 1.0,
                low_ratio: 0.05,
                high_ratio: 0.15,
            },
        );
        let strict = canny(
            &img,
            CannyParams {
                sigma: 1.0,
                low_ratio: 0.3,
                high_ratio: 0.8,
            },
        );
        assert!(strict.edge_count() <= loose.edge_count());
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn invalid_thresholds_panic() {
        let img = GrayImage::new(8, 8);
        let _ = canny(
            &img,
            CannyParams {
                sigma: 1.0,
                low_ratio: 0.5,
                high_ratio: 0.2,
            },
        );
    }

    #[test]
    fn edge_map_gray_rendering_matches() {
        let img = step_image(16, 16);
        let map = canny(&img, CannyParams::default());
        let gray = map.to_gray();
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(gray.get(x, y) == 1.0, map.is_edge(x, y));
            }
        }
    }
}
