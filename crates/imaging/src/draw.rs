//! Shape, gradient, and noise rendering primitives.
//!
//! The synthetic COREL substitute ([`crate::synthetic`]) composes images out
//! of these primitives; they are deliberately simple rasterizers (no
//! anti-aliasing) because the downstream consumers are statistical feature
//! extractors, not human eyes.

use crate::color::Hsv;
use crate::image::RgbImage;
use rand::Rng;

/// Fills the whole image with a vertical HSV gradient from `top` to `bottom`.
///
/// Hue is interpolated along the shorter arc of the hue circle.
pub fn fill_vertical_gradient(img: &mut RgbImage, top: Hsv, bottom: Hsv) {
    let h = img.height();
    let w = img.width();
    for y in 0..h {
        let t = if h == 1 {
            0.0
        } else {
            y as f32 / (h - 1) as f32
        };
        let color = lerp_hsv(top, bottom, t).to_rgb();
        for x in 0..w {
            img.set(x, y, color);
        }
    }
}

/// Interpolates two HSV colors; hue takes the shorter arc.
pub fn lerp_hsv(a: Hsv, b: Hsv, t: f32) -> Hsv {
    let mut dh = b.h - a.h;
    if dh > 0.5 {
        dh -= 1.0;
    } else if dh < -0.5 {
        dh += 1.0;
    }
    Hsv::new(a.h + dh * t, a.s + (b.s - a.s) * t, a.v + (b.v - a.v) * t)
}

/// Draws a filled axis-aligned rectangle; clipped to the image bounds.
pub fn fill_rect(img: &mut RgbImage, x0: isize, y0: isize, w: usize, h: usize, color: [u8; 3]) {
    for dy in 0..h as isize {
        for dx in 0..w as isize {
            img.set_clipped(x0 + dx, y0 + dy, color);
        }
    }
}

/// Draws a filled disc of radius `r` centered at `(cx, cy)`; clipped.
pub fn fill_disc(img: &mut RgbImage, cx: isize, cy: isize, r: isize, color: [u8; 3]) {
    let r2 = r * r;
    for dy in -r..=r {
        for dx in -r..=r {
            if dx * dx + dy * dy <= r2 {
                img.set_clipped(cx + dx, cy + dy, color);
            }
        }
    }
}

/// Draws a straight line of the given thickness between two points using a
/// dense parametric walk (adequate for small canvases); clipped.
pub fn draw_line(
    img: &mut RgbImage,
    x0: isize,
    y0: isize,
    x1: isize,
    y1: isize,
    thickness: usize,
    color: [u8; 3],
) {
    let steps = (x1 - x0).abs().max((y1 - y0).abs()).max(1) * 2;
    let half = thickness as isize / 2;
    for s in 0..=steps {
        let t = s as f32 / steps as f32;
        let x = x0 as f32 + (x1 - x0) as f32 * t;
        let y = y0 as f32 + (y1 - y0) as f32 * t;
        for dy in -half..=half {
            for dx in -half..=half {
                img.set_clipped(x.round() as isize + dx, y.round() as isize + dy, color);
            }
        }
    }
}

/// Overlays sinusoidal stripes of the given angular orientation (radians),
/// spatial frequency (cycles per image width), and blend strength in `[0,1]`.
///
/// Stripes brighten/darken the existing pixels rather than replacing them,
/// so they act as a texture carrier on top of the color palette — this is
/// what gives categories a wavelet-texture signature.
pub fn overlay_stripes(img: &mut RgbImage, angle: f32, frequency: f32, strength: f32, phase: f32) {
    let w = img.width() as f32;
    let (sin_a, cos_a) = angle.sin_cos();
    let two_pi = std::f32::consts::TAU;
    for y in 0..img.height() {
        for x in 0..img.width() {
            let u = (x as f32 * cos_a + y as f32 * sin_a) / w;
            let m = 1.0 + strength * (two_pi * frequency * u + phase).sin();
            let [r, g, b] = img.get(x, y);
            img.set(x, y, [scale_u8(r, m), scale_u8(g, m), scale_u8(b, m)]);
        }
    }
}

/// Overlays a checkerboard modulation with the given cell size in pixels and
/// blend strength in `[0,1]`; dark cells are dimmed, light cells brightened.
pub fn overlay_checker(img: &mut RgbImage, cell: usize, strength: f32) {
    let cell = cell.max(1);
    for y in 0..img.height() {
        for x in 0..img.width() {
            let parity = (x / cell + y / cell) % 2;
            let m = if parity == 0 {
                1.0 + strength
            } else {
                1.0 - strength
            };
            let [r, g, b] = img.get(x, y);
            img.set(x, y, [scale_u8(r, m), scale_u8(g, m), scale_u8(b, m)]);
        }
    }
}

/// Adds independent uniform pixel noise of amplitude `amp` (in 8-bit counts)
/// to every channel. This models sensor/compression noise and prevents the
/// synthetic categories from being trivially separable.
pub fn add_pixel_noise<R: Rng>(img: &mut RgbImage, amp: f32, rng: &mut R) {
    if amp <= 0.0 {
        return;
    }
    for px in img.pixels_mut() {
        for c in px.iter_mut() {
            let n = rng.gen_range(-amp..=amp);
            *c = (f32::from(*c) + n).round().clamp(0.0, 255.0) as u8;
        }
    }
}

/// Overlays smooth low-frequency "blob" mottling: `count` soft discs that
/// multiply local brightness. Gives organic texture (foliage / fur-like)
/// distinct from stripes and checkers in the wavelet domain.
pub fn overlay_blobs<R: Rng>(img: &mut RgbImage, count: usize, strength: f32, rng: &mut R) {
    let w = img.width() as isize;
    let h = img.height() as isize;
    for _ in 0..count {
        let cx = rng.gen_range(0..w);
        let cy = rng.gen_range(0..h);
        let r = rng.gen_range((w.min(h) / 12).max(2)..=(w.min(h) / 4).max(3));
        let bright = rng.gen_bool(0.5);
        let r2 = (r * r) as f32;
        for dy in -r..=r {
            for dx in -r..=r {
                let d2 = (dx * dx + dy * dy) as f32;
                if d2 > r2 {
                    continue;
                }
                let x = cx + dx;
                let y = cy + dy;
                if x < 0 || y < 0 || x >= w || y >= h {
                    continue;
                }
                let falloff = 1.0 - d2 / r2;
                let m = if bright {
                    1.0 + strength * falloff
                } else {
                    1.0 - strength * falloff
                };
                let [pr, pg, pb] = img.get(x as usize, y as usize);
                img.set(
                    x as usize,
                    y as usize,
                    [scale_u8(pr, m), scale_u8(pg, m), scale_u8(pb, m)],
                );
            }
        }
    }
}

#[inline]
fn scale_u8(v: u8, m: f32) -> u8 {
    (f32::from(v) * m).round().clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gradient_endpoints_match() {
        let mut img = RgbImage::new(4, 8);
        let top = Hsv::new(0.0, 1.0, 1.0);
        let bottom = Hsv::new(0.5, 1.0, 0.2);
        fill_vertical_gradient(&mut img, top, bottom);
        assert_eq!(img.get(0, 0), top.to_rgb());
        assert_eq!(img.get(3, 7), bottom.to_rgb());
    }

    #[test]
    fn lerp_hsv_takes_short_hue_arc() {
        // 0.9 → 0.1 should pass through 1.0/0.0, not 0.5.
        let mid = lerp_hsv(Hsv::new(0.9, 1.0, 1.0), Hsv::new(0.1, 1.0, 1.0), 0.5);
        assert!(mid.h < 0.05 || mid.h > 0.95, "hue {} should wrap", mid.h);
    }

    #[test]
    fn rect_is_clipped_not_panicking() {
        let mut img = RgbImage::new(4, 4);
        fill_rect(&mut img, -2, -2, 10, 10, [255, 255, 255]);
        assert_eq!(img.get(0, 0), [255, 255, 255]);
        assert_eq!(img.get(3, 3), [255, 255, 255]);
    }

    #[test]
    fn disc_center_and_radius() {
        let mut img = RgbImage::new(9, 9);
        fill_disc(&mut img, 4, 4, 2, [255, 0, 0]);
        assert_eq!(img.get(4, 4), [255, 0, 0]);
        assert_eq!(img.get(4, 6), [255, 0, 0]); // on radius
        assert_eq!(img.get(0, 0), [0, 0, 0]); // far corner untouched
        assert_eq!(img.get(7, 4), [0, 0, 0]); // just outside radius
    }

    #[test]
    fn line_covers_endpoints() {
        let mut img = RgbImage::new(8, 8);
        draw_line(&mut img, 0, 0, 7, 7, 1, [0, 255, 0]);
        assert_eq!(img.get(0, 0), [0, 255, 0]);
        assert_eq!(img.get(7, 7), [0, 255, 0]);
        assert_eq!(img.get(3, 3), [0, 255, 0]);
    }

    #[test]
    fn stripes_modulate_brightness() {
        let mut img = RgbImage::filled(32, 32, [128, 128, 128]);
        overlay_stripes(&mut img, 0.0, 4.0, 0.5, 0.0);
        let vals: Vec<u8> = img.pixels().iter().map(|p| p[0]).collect();
        let max = *vals.iter().max().unwrap();
        let min = *vals.iter().min().unwrap();
        assert!(
            max > 150 && min < 100,
            "stripes should spread brightness, got {min}..{max}"
        );
        // columns should vary along x (angle 0 = vertical stripes), constant along y
        assert_eq!(img.get(5, 0)[0], img.get(5, 20)[0]);
    }

    #[test]
    fn checker_alternates_cells() {
        let mut img = RgbImage::filled(8, 8, [100, 100, 100]);
        overlay_checker(&mut img, 4, 0.4);
        assert!(img.get(0, 0)[0] > img.get(4, 0)[0]);
        assert_eq!(img.get(0, 0)[0], img.get(4, 4)[0]);
    }

    #[test]
    fn noise_is_deterministic_per_seed_and_bounded() {
        let mut a = RgbImage::filled(16, 16, [128, 128, 128]);
        let mut b = RgbImage::filled(16, 16, [128, 128, 128]);
        add_pixel_noise(&mut a, 10.0, &mut StdRng::seed_from_u64(7));
        add_pixel_noise(&mut b, 10.0, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        for px in a.pixels() {
            for &c in px {
                assert!((118..=138).contains(&c));
            }
        }
    }

    #[test]
    fn zero_amplitude_noise_is_identity() {
        let mut img = RgbImage::filled(4, 4, [42, 42, 42]);
        add_pixel_noise(&mut img, 0.0, &mut StdRng::seed_from_u64(1));
        assert!(img.pixels().iter().all(|&p| p == [42, 42, 42]));
    }

    #[test]
    fn blobs_change_some_pixels() {
        let mut img = RgbImage::filled(32, 32, [120, 120, 120]);
        overlay_blobs(&mut img, 6, 0.5, &mut StdRng::seed_from_u64(3));
        let changed = img
            .pixels()
            .iter()
            .filter(|&&p| p != [120, 120, 120])
            .count();
        assert!(changed > 20, "expected blob coverage, changed={changed}");
    }
}
