//! Separable convolution, Gaussian smoothing, and Sobel gradients.
//!
//! Boundary handling is replicate ("clamp to edge") everywhere, matching the
//! common choice in edge-detection pipelines.

use crate::image::GrayImage;

/// Convolves the image with a horizontal 1-D kernel (centered).
pub fn convolve_rows(img: &GrayImage, kernel: &[f32]) -> GrayImage {
    assert!(
        !kernel.is_empty() && kernel.len() % 2 == 1,
        "kernel must have odd length"
    );
    let half = (kernel.len() / 2) as isize;
    let mut out = GrayImage::new(img.width(), img.height());
    for y in 0..img.height() {
        for x in 0..img.width() {
            let mut acc = 0.0f32;
            for (k, &kv) in kernel.iter().enumerate() {
                let sx = x as isize + k as isize - half;
                acc += kv * img.get_clamped(sx, y as isize);
            }
            out.set(x, y, acc);
        }
    }
    out
}

/// Convolves the image with a vertical 1-D kernel (centered).
pub fn convolve_cols(img: &GrayImage, kernel: &[f32]) -> GrayImage {
    assert!(
        !kernel.is_empty() && kernel.len() % 2 == 1,
        "kernel must have odd length"
    );
    let half = (kernel.len() / 2) as isize;
    let mut out = GrayImage::new(img.width(), img.height());
    for y in 0..img.height() {
        for x in 0..img.width() {
            let mut acc = 0.0f32;
            for (k, &kv) in kernel.iter().enumerate() {
                let sy = y as isize + k as isize - half;
                acc += kv * img.get_clamped(x as isize, sy);
            }
            out.set(x, y, acc);
        }
    }
    out
}

/// Convolves with a separable kernel applied along both axes.
pub fn convolve_separable(img: &GrayImage, kernel: &[f32]) -> GrayImage {
    convolve_cols(&convolve_rows(img, kernel), kernel)
}

/// Builds a normalized 1-D Gaussian kernel with the given standard deviation.
///
/// The radius is `ceil(3σ)`, covering > 99.7% of the mass; coefficients are
/// normalized to sum to exactly 1 so smoothing preserves mean intensity.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as isize;
    let denom = 2.0 * sigma * sigma;
    let mut kernel: Vec<f32> = (-radius..=radius)
        .map(|i| (-((i * i) as f32) / denom).exp())
        .collect();
    let sum: f32 = kernel.iter().sum();
    for k in &mut kernel {
        *k /= sum;
    }
    kernel
}

/// Gaussian-blurs the image with standard deviation `sigma`.
pub fn gaussian_blur(img: &GrayImage, sigma: f32) -> GrayImage {
    convolve_separable(img, &gaussian_kernel(sigma))
}

/// Horizontal and vertical Sobel gradient images `(gx, gy)`.
///
/// `gx` responds to vertical edges (intensity change along x), `gy` to
/// horizontal edges. Standard 3×3 Sobel masks, separable form
/// `[1 2 1]ᵀ · [-1 0 1]`.
pub fn sobel(img: &GrayImage) -> (GrayImage, GrayImage) {
    let smooth = [1.0, 2.0, 1.0];
    let diff = [-1.0, 0.0, 1.0];
    let gx = convolve_cols(&convolve_rows(img, &diff), &smooth);
    let gy = convolve_rows(&convolve_cols(img, &diff), &smooth);
    (gx, gy)
}

/// Gradient magnitude `sqrt(gx² + gy²)` computed pixel-wise.
pub fn gradient_magnitude(gx: &GrayImage, gy: &GrayImage) -> GrayImage {
    assert_eq!(gx.width(), gy.width());
    assert_eq!(gx.height(), gy.height());
    let data = gx
        .as_slice()
        .iter()
        .zip(gy.as_slice())
        .map(|(&a, &b)| (a * a + b * b).sqrt())
        .collect();
    GrayImage::from_vec(gx.width(), gx.height(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn constant(w: usize, h: usize, v: f32) -> GrayImage {
        GrayImage::filled(w, h, v)
    }

    #[test]
    fn identity_kernel_is_noop() {
        let img = GrayImage::from_vec(3, 3, (0..9).map(|v| v as f32).collect());
        let out = convolve_separable(&img, &[1.0]);
        assert_eq!(out.as_slice(), img.as_slice());
    }

    #[test]
    fn gaussian_kernel_normalized_and_symmetric() {
        for sigma in [0.5f32, 1.0, 1.4, 2.5] {
            let k = gaussian_kernel(sigma);
            assert_eq!(k.len() % 2, 1);
            let sum: f32 = k.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "sum {sum}");
            for i in 0..k.len() / 2 {
                assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-6);
            }
            // peak at center
            let mid = k.len() / 2;
            assert!(k.iter().all(|&v| v <= k[mid] + 1e-9));
        }
    }

    #[test]
    fn blur_preserves_constant_images() {
        let img = constant(8, 6, 0.37);
        let out = gaussian_blur(&img, 1.4);
        for &v in out.as_slice() {
            assert!((v - 0.37).abs() < 1e-5);
        }
    }

    #[test]
    fn sobel_zero_on_flat_image() {
        let img = constant(8, 8, 0.5);
        let (gx, gy) = sobel(&img);
        assert!(gx.as_slice().iter().all(|&v| v.abs() < 1e-6));
        assert!(gy.as_slice().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn sobel_detects_vertical_step() {
        // Left half 0, right half 1 → strong gx at the boundary, gy ~ 0.
        let mut img = GrayImage::new(8, 8);
        for y in 0..8 {
            for x in 4..8 {
                img.set(x, y, 1.0);
            }
        }
        let (gx, gy) = sobel(&img);
        let center_gx = gx.get(4, 4).abs();
        assert!(center_gx > 1.0, "gx at step = {center_gx}");
        assert!(gy.get(4, 4).abs() < 1e-6);
        // gradient positive: intensity increases with x
        assert!(gx.get(4, 4) > 0.0);
    }

    #[test]
    fn sobel_detects_horizontal_step() {
        let mut img = GrayImage::new(8, 8);
        for y in 4..8 {
            for x in 0..8 {
                img.set(x, y, 1.0);
            }
        }
        let (gx, gy) = sobel(&img);
        assert!(gy.get(4, 4) > 1.0);
        assert!(gx.get(4, 4).abs() < 1e-6);
    }

    #[test]
    fn magnitude_is_euclidean() {
        let gx = GrayImage::from_vec(1, 1, vec![3.0]);
        let gy = GrayImage::from_vec(1, 1, vec![4.0]);
        let m = gradient_magnitude(&gx, &gy);
        assert!((m.get(0, 0) - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "odd length")]
    fn even_kernel_rejected() {
        let img = constant(4, 4, 0.0);
        let _ = convolve_rows(&img, &[0.5, 0.5]);
    }

    proptest! {
        /// Blurring never extends the value range of the input (since the
        /// kernel is a convex combination under replicate padding).
        #[test]
        fn blur_within_input_range(vals in proptest::collection::vec(0.0f32..1.0, 36)) {
            let img = GrayImage::from_vec(6, 6, vals.clone());
            let out = gaussian_blur(&img, 1.0);
            let min = vals.iter().cloned().fold(f32::INFINITY, f32::min);
            let max = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            for &v in out.as_slice() {
                prop_assert!(v >= min - 1e-4 && v <= max + 1e-4);
            }
        }

        /// Convolution is linear: conv(a·img) == a·conv(img).
        #[test]
        fn convolution_is_homogeneous(vals in proptest::collection::vec(-1.0f32..1.0, 16), a in 0.1f32..3.0) {
            let img = GrayImage::from_vec(4, 4, vals.clone());
            let scaled = GrayImage::from_vec(4, 4, vals.iter().map(|v| v * a).collect());
            let k = gaussian_kernel(0.8);
            let c1 = convolve_separable(&scaled, &k);
            let c2 = convolve_separable(&img, &k);
            for (u, v) in c1.as_slice().iter().zip(c2.as_slice()) {
                prop_assert!((u - a * v).abs() < 1e-3);
            }
        }
    }
}
