//! Daubechies-4 discrete wavelet transform (1-D and 2-D, multi-level).
//!
//! The paper's texture feature: "we perform the Discrete Wavelet
//! Transformation (DWT) on the gray images employing a Daubechies-4 wavelet
//! filter ... In total, we perform 3-level decompositions and obtain 10
//! subimages" — one approximation and nine detail subbands. The entropy of
//! each of the nine detail subbands becomes the 9-D texture descriptor
//! (computed in `lrf-features::texture`).
//!
//! The transform here uses **periodic boundary handling**, which keeps the
//! basis orthonormal: energy is preserved exactly and the inverse transform
//! reconstructs the input to floating-point precision — both properties are
//! enforced by property tests.

use crate::image::GrayImage;

/// The four Daubechies-4 scaling coefficients `h0..h3`.
///
/// `h_k = (1 ± √3) / (4√2)` pattern; the wavelet (high-pass) filter is the
/// quadrature mirror `g_k = (-1)^k · h_{3-k}`.
pub const DB4_H: [f64; 4] = {
    // (1+√3)/(4√2), (3+√3)/(4√2), (3−√3)/(4√2), (1−√3)/(4√2)
    // √3 and √2 are not const fns; values are written out to full f64 precision.
    [
        0.482_962_913_144_690_2,
        0.836_516_303_737_469,
        0.224_143_868_041_857_35,
        -0.129_409_522_550_921_44,
    ]
};

/// High-pass (wavelet) filter derived from [`DB4_H`].
pub const DB4_G: [f64; 4] = [
    // g_k = (-1)^k h_{3-k}
    -0.129_409_522_550_921_44,
    -0.224_143_868_041_857_35,
    0.836_516_303_737_469,
    -0.482_962_913_144_690_2,
];

/// One level of the forward 1-D DB4 transform with periodic boundaries.
///
/// Input length must be even and ≥ 4. The first half of the output receives
/// the approximation (low-pass) coefficients, the second half the detail
/// (high-pass) coefficients.
pub fn dwt1d_forward(signal: &[f32], out: &mut [f32]) {
    let n = signal.len();
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "DWT needs even length >= 4, got {n}"
    );
    assert_eq!(out.len(), n);
    let half = n / 2;
    for i in 0..half {
        let mut a = 0.0f64;
        let mut d = 0.0f64;
        for k in 0..4 {
            let idx = (2 * i + k) % n;
            let s = f64::from(signal[idx]);
            a += DB4_H[k] * s;
            d += DB4_G[k] * s;
        }
        out[i] = a as f32;
        out[half + i] = d as f32;
    }
}

/// One level of the inverse 1-D DB4 transform (exact inverse of
/// [`dwt1d_forward`] up to floating-point error).
pub fn dwt1d_inverse(coeffs: &[f32], out: &mut [f32]) {
    let n = coeffs.len();
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "DWT needs even length >= 4, got {n}"
    );
    assert_eq!(out.len(), n);
    let half = n / 2;
    for o in out.iter_mut() {
        *o = 0.0;
    }
    // Transpose of the forward (orthonormal) analysis operator.
    let mut acc = vec![0.0f64; n];
    for i in 0..half {
        let a = f64::from(coeffs[i]);
        let d = f64::from(coeffs[half + i]);
        for k in 0..4 {
            let idx = (2 * i + k) % n;
            acc[idx] += DB4_H[k] * a + DB4_G[k] * d;
        }
    }
    for (o, &v) in out.iter_mut().zip(&acc) {
        *o = v as f32;
    }
}

/// One 2-D decomposition level: returns `(ll, lh, hl, hh)` quarter-size
/// subimages (approximation, horizontal, vertical, diagonal detail).
///
/// Rows are transformed first, then columns — the conventional separable
/// Mallat scheme. Input dimensions must be even and ≥ 4.
pub fn dwt2d_level(img: &GrayImage) -> (GrayImage, GrayImage, GrayImage, GrayImage) {
    let w = img.width();
    let h = img.height();
    assert!(
        w >= 4 && w.is_multiple_of(2),
        "width must be even and >= 4, got {w}"
    );
    assert!(
        h >= 4 && h.is_multiple_of(2),
        "height must be even and >= 4, got {h}"
    );

    // Row pass.
    let mut row_in = vec![0.0f32; w];
    let mut row_out = vec![0.0f32; w];
    let mut row_transformed = GrayImage::new(w, h);
    for y in 0..h {
        img.read_row(y, &mut row_in);
        dwt1d_forward(&row_in, &mut row_out);
        row_transformed.write_row(y, &row_out);
    }

    // Column pass.
    let mut col_in = vec![0.0f32; h];
    let mut col_out = vec![0.0f32; h];
    let mut full = GrayImage::new(w, h);
    for x in 0..w {
        row_transformed.read_col(x, &mut col_in);
        dwt1d_forward(&col_in, &mut col_out);
        full.write_col(x, &col_out);
    }

    let hw = w / 2;
    let hh = h / 2;
    (
        full.crop(0, 0, hw, hh),   // LL
        full.crop(hw, 0, hw, hh),  // LH: high-pass rows, low-pass cols
        full.crop(0, hh, hw, hh),  // HL: low-pass rows, high-pass cols
        full.crop(hw, hh, hw, hh), // HH
    )
}

/// Inverse of [`dwt2d_level`].
pub fn dwt2d_level_inverse(
    ll: &GrayImage,
    lh: &GrayImage,
    hl: &GrayImage,
    hh: &GrayImage,
) -> GrayImage {
    let hw = ll.width();
    let hh_ = ll.height();
    for sub in [lh, hl, hh] {
        assert_eq!(sub.width(), hw);
        assert_eq!(sub.height(), hh_);
    }
    let w = hw * 2;
    let h = hh_ * 2;

    // Reassemble the packed coefficient image.
    let mut full = GrayImage::new(w, h);
    for y in 0..hh_ {
        for x in 0..hw {
            full.set(x, y, ll.get(x, y));
            full.set(hw + x, y, lh.get(x, y));
            full.set(x, hh_ + y, hl.get(x, y));
            full.set(hw + x, hh_ + y, hh.get(x, y));
        }
    }

    // Inverse column pass then inverse row pass.
    let mut col_in = vec![0.0f32; h];
    let mut col_out = vec![0.0f32; h];
    let mut col_done = GrayImage::new(w, h);
    for x in 0..w {
        full.read_col(x, &mut col_in);
        dwt1d_inverse(&col_in, &mut col_out);
        col_done.write_col(x, &col_out);
    }
    let mut row_in = vec![0.0f32; w];
    let mut row_out = vec![0.0f32; w];
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        col_done.read_row(y, &mut row_in);
        dwt1d_inverse(&row_in, &mut row_out);
        out.write_row(y, &row_out);
    }
    out
}

/// A full multi-level decomposition: `levels` triplets of detail subbands
/// (finest first) plus the final approximation.
#[derive(Clone, Debug)]
pub struct WaveletPyramid {
    /// `(lh, hl, hh)` per level, index 0 = finest scale.
    pub details: Vec<(GrayImage, GrayImage, GrayImage)>,
    /// The coarsest approximation subimage.
    pub approx: GrayImage,
}

impl WaveletPyramid {
    /// Iterates the detail subbands in the paper's order — for a 3-level
    /// decomposition this yields the 9 detail subimages (the 10th subimage,
    /// the approximation, "is discarded since it contains less useful
    /// texture information").
    pub fn detail_bands(&self) -> impl Iterator<Item = &GrayImage> {
        self.details.iter().flat_map(|(lh, hl, hh)| [lh, hl, hh])
    }

    /// Number of decomposition levels.
    pub fn levels(&self) -> usize {
        self.details.len()
    }
}

/// Performs a `levels`-deep 2-D decomposition.
///
/// # Panics
/// Panics if the image is not at least `4·2^(levels-1)` on each side with
/// dimensions divisible by `2^levels`.
pub fn dwt2d_multilevel(img: &GrayImage, levels: usize) -> WaveletPyramid {
    assert!(levels >= 1, "need at least one level");
    let mut details = Vec::with_capacity(levels);
    let mut current = img.clone();
    for _ in 0..levels {
        let (ll, lh, hl, hh) = dwt2d_level(&current);
        details.push((lh, hl, hh));
        current = ll;
    }
    WaveletPyramid {
        details,
        approx: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn filter_orthonormality() {
        // Σ h_k² = 1, Σ h_k g_k = 0, Σ h_k = √2, Σ g_k = 0.
        let h2: f64 = DB4_H.iter().map(|v| v * v).sum();
        assert!((h2 - 1.0).abs() < 1e-12);
        let hg: f64 = DB4_H.iter().zip(&DB4_G).map(|(a, b)| a * b).sum();
        assert!(hg.abs() < 1e-12);
        let hsum: f64 = DB4_H.iter().sum();
        assert!((hsum - std::f64::consts::SQRT_2).abs() < 1e-12);
        let gsum: f64 = DB4_G.iter().sum();
        assert!(gsum.abs() < 1e-12);
    }

    #[test]
    fn forward_inverse_roundtrip_1d() {
        let signal: Vec<f32> = (0..16).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut coeffs = vec![0.0f32; 16];
        let mut back = vec![0.0f32; 16];
        dwt1d_forward(&signal, &mut coeffs);
        dwt1d_inverse(&coeffs, &mut back);
        for (a, b) in signal.iter().zip(&back) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_signal_has_zero_detail() {
        let signal = vec![0.6f32; 8];
        let mut coeffs = vec![0.0f32; 8];
        dwt1d_forward(&signal, &mut coeffs);
        // Detail half must vanish for constant inputs (vanishing moment).
        for &d in &coeffs[4..] {
            assert!(d.abs() < 1e-6, "detail {d}");
        }
        // Approximation carries √2-scaled values.
        for &a in &coeffs[..4] {
            assert!((a - 0.6 * std::f32::consts::SQRT_2).abs() < 1e-5);
        }
    }

    #[test]
    fn linear_ramp_has_zero_detail_except_wrap() {
        // DB4 has two vanishing moments; a linear ramp yields zero detail
        // everywhere except where the periodic boundary wraps the ramp.
        let signal: Vec<f32> = (0..32).map(|i| i as f32).collect();
        let mut coeffs = vec![0.0f32; 32];
        dwt1d_forward(&signal, &mut coeffs);
        for (i, &d) in coeffs[16..].iter().enumerate() {
            if i < 15 {
                assert!(d.abs() < 1e-3, "interior detail [{i}] = {d}");
            }
        }
        // wrap-around coefficient is large
        assert!(coeffs[31].abs() > 1.0);
    }

    #[test]
    fn roundtrip_2d_level() {
        let img = GrayImage::from_vec(
            8,
            8,
            (0..64).map(|i| ((i * 37 % 64) as f32) / 64.0).collect(),
        );
        let (ll, lh, hl, hh) = dwt2d_level(&img);
        let back = dwt2d_level_inverse(&ll, &lh, &hl, &hh);
        for (a, b) in img.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn three_level_pyramid_shapes() {
        let img = GrayImage::filled(64, 32, 0.5);
        let pyr = dwt2d_multilevel(&img, 3);
        assert_eq!(pyr.levels(), 3);
        assert_eq!(pyr.detail_bands().count(), 9);
        let (lh0, _, _) = &pyr.details[0];
        assert_eq!((lh0.width(), lh0.height()), (32, 16));
        let (lh2, _, _) = &pyr.details[2];
        assert_eq!((lh2.width(), lh2.height()), (8, 4));
        assert_eq!((pyr.approx.width(), pyr.approx.height()), (8, 4));
    }

    #[test]
    fn horizontal_stripes_concentrate_in_hl_band() {
        // Stripes varying along y (horizontal bands) are picked up by the
        // column high-pass → HL subband energy dominates LH.
        let mut img = GrayImage::new(32, 32);
        for y in 0..32 {
            let v = if (y / 2) % 2 == 0 { 1.0 } else { 0.0 };
            for x in 0..32 {
                img.set(x, y, v);
            }
        }
        let (_, lh, hl, _) = dwt2d_level(&img);
        assert!(
            hl.energy() > 10.0 * lh.energy(),
            "hl={} lh={}",
            hl.energy(),
            lh.energy()
        );
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_length_rejected() {
        let mut out = vec![0.0; 5];
        dwt1d_forward(&[0.0; 5], &mut out);
    }

    proptest! {
        /// Orthonormal transform preserves energy (Parseval).
        #[test]
        fn energy_preservation_1d(vals in proptest::collection::vec(-2.0f32..2.0, 16)) {
            let mut coeffs = vec![0.0f32; 16];
            dwt1d_forward(&vals, &mut coeffs);
            let e_in: f64 = vals.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
            let e_out: f64 = coeffs.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
            prop_assert!((e_in - e_out).abs() < 1e-3 * e_in.max(1.0));
        }

        /// Forward∘inverse == identity for arbitrary even-length signals.
        #[test]
        fn roundtrip_random_1d(vals in proptest::collection::vec(-5.0f32..5.0, 24)) {
            let mut coeffs = vec![0.0f32; 24];
            let mut back = vec![0.0f32; 24];
            dwt1d_forward(&vals, &mut coeffs);
            dwt1d_inverse(&coeffs, &mut back);
            for (a, b) in vals.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }

        /// 2-D energy preservation across one level.
        #[test]
        fn energy_preservation_2d(vals in proptest::collection::vec(-1.0f32..1.0, 64)) {
            let img = GrayImage::from_vec(8, 8, vals);
            let (ll, lh, hl, hh) = dwt2d_level(&img);
            let total = ll.energy() + lh.energy() + hl.energy() + hh.energy();
            prop_assert!((total - img.energy()).abs() < 1e-3 * img.energy().max(1.0));
        }
    }
}
