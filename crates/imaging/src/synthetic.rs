//! Synthetic COREL-like image corpus.
//!
//! The paper evaluates on 20- and 50-category subsets of the COREL image CDs
//! (100 images per category: antique, antelope, aviation, balloon, ...).
//! COREL is proprietary and unavailable, so this module generates a corpus
//! with the *statistical properties the algorithms actually consume*:
//!
//! * **Categories are multimodal.** A COREL category is a union of tight
//!   "photo shoots": within a shoot, images are nearly identical in
//!   low-level statistics; across shoots of the same category they differ
//!   wildly (a "car" can be any color). We model this with per-category
//!   [`ThemeStyle`]s — each image is drawn from one of its category's
//!   themes with tight within-theme jitter.
//! * **The semantic gap is structural.** Theme appearance is only loosely
//!   anchored to the category (hue anchoring plus a texture-family bias,
//!   with off-palette themes), so low-level features retrieve the query's
//!   *theme*, not its *category*: Euclidean precision lands in the band the
//!   paper reports for COREL (≈ 0.4 at top-20 for 20 categories), and only
//!   semantic information (the feedback log) can bridge between themes of
//!   the same category.
//! * Per-image jitter, off-theme outliers, distractor clutter, and pixel
//!   noise keep every image distinct.
//! * Generation is **deterministic** given `(seed, category, index)`, so
//!   experiments are bit-reproducible and images never need to be stored.
//!
//! The knobs that govern intra/inter-category structure live in
//! [`StyleDistribution`]; `EXPERIMENTS.md` records the calibration.

use crate::color::Hsv;
use crate::draw;
use crate::image::RgbImage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The texture family a theme carries.
///
/// Different motifs produce distinct wavelet-entropy signatures; sharing a
/// motif family (with different parameters) across categories is one of the
/// deliberate sources of inter-category confusion.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TextureMotif {
    /// Sinusoidal stripes with orientation (radians) and frequency
    /// (cycles per image width).
    Stripes { angle: f32, frequency: f32 },
    /// Checkerboard modulation with the given cell edge (pixels).
    Checker { cell: usize },
    /// Soft organic mottling with the given blob count.
    Blobs { count: usize },
    /// No texture carrier (smooth background only).
    Smooth,
}

/// The shape family drawn on top of the background.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShapeMotif {
    /// Filled discs.
    Discs,
    /// Filled axis-aligned boxes.
    Boxes,
    /// Thick straight bars.
    Bars,
    /// No foreground shapes.
    None,
}

/// One "photo shoot": a tight appearance cluster inside a category.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThemeStyle {
    /// Background hue center, `[0, 1)`.
    pub hue: f32,
    /// Within-theme hue jitter half-width (small).
    pub hue_jitter: f32,
    /// Background saturation center.
    pub saturation: f32,
    /// Background value (brightness) center.
    pub value: f32,
    /// Texture carrier (fixed parameters for the whole theme).
    pub motif: TextureMotif,
    /// Texture blend strength `[0, 1]`.
    pub motif_strength: f32,
    /// Foreground shape family.
    pub shapes: ShapeMotif,
    /// Inclusive range of foreground shapes per image.
    pub shape_count: (usize, usize),
    /// Hue offset of foreground shapes relative to the background hue.
    pub shape_hue_offset: f32,
    /// Per-pixel uniform noise amplitude (8-bit counts).
    pub noise_amp: f32,
}

/// A category: a set of themes plus the outlier rate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CategoryStyle {
    /// The category's themes ("photo shoots").
    pub themes: Vec<ThemeStyle>,
    /// Probability an image ignores its category's themes entirely and is
    /// rendered from a freshly sampled global theme (an outlier photo).
    pub off_theme_prob: f32,
}

/// The distribution category styles are sampled from — the single
/// calibration surface of the corpus.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StyleDistribution {
    /// Inclusive range of themes per category.
    pub themes_per_category: (usize, usize),
    /// Std-dev-like half-width of theme hue spread around the category
    /// anchor hue.
    pub theme_hue_spread: f32,
    /// Probability a theme's hue is drawn globally (off-palette theme) —
    /// "a car can be any color".
    pub theme_off_palette: f32,
    /// Probability a theme uses the category's texture family (with fresh
    /// parameters) rather than a random family.
    pub theme_family_adherence: f32,
    /// Within-theme per-image hue jitter half-width.
    pub within_theme_hue_jitter: f32,
    /// Probability an image is an off-theme outlier.
    pub off_theme_prob: f32,
    /// Range per-theme pixel-noise amplitude is drawn from (8-bit counts).
    pub noise_amp: (f32, f32),
    /// Maximum foreground shapes per image.
    pub max_shapes: usize,
}

impl Default for StyleDistribution {
    fn default() -> Self {
        // Calibrated so 36-D feature Euclidean P@20 on the 20-category
        // corpus lands near the paper's 0.398 while categories stay
        // multimodal (see EXPERIMENTS.md § calibration).
        Self {
            themes_per_category: (5, 8),
            theme_hue_spread: 0.045,
            theme_off_palette: 0.12,
            theme_family_adherence: 0.7,
            within_theme_hue_jitter: 0.03,
            off_theme_prob: 0.08,
            noise_amp: (8.0, 25.0),
            max_shapes: 6,
        }
    }
}

/// Draws a texture motif with globally distributed parameters.
fn sample_motif<R: Rng>(rng: &mut R) -> TextureMotif {
    match rng.gen_range(0..4u8) {
        0 => TextureMotif::Stripes {
            angle: rng.gen_range(0.0..std::f32::consts::PI),
            frequency: rng.gen_range(2.0..16.0),
        },
        1 => TextureMotif::Checker {
            cell: rng.gen_range(2..12),
        },
        2 => TextureMotif::Blobs {
            count: rng.gen_range(3..14),
        },
        _ => TextureMotif::Smooth,
    }
}

/// Draws a motif from the same *family* as `family` but with fresh
/// parameters (theme-level variation within a category's texture family).
fn sample_motif_in_family<R: Rng>(family: TextureMotif, rng: &mut R) -> TextureMotif {
    match family {
        TextureMotif::Stripes { .. } => TextureMotif::Stripes {
            angle: rng.gen_range(0.0..std::f32::consts::PI),
            frequency: rng.gen_range(2.0..16.0),
        },
        TextureMotif::Checker { .. } => TextureMotif::Checker {
            cell: rng.gen_range(2..12),
        },
        TextureMotif::Blobs { .. } => TextureMotif::Blobs {
            count: rng.gen_range(3..14),
        },
        TextureMotif::Smooth => TextureMotif::Smooth,
    }
}

fn sample_shapes<R: Rng>(rng: &mut R) -> ShapeMotif {
    match rng.gen_range(0..4u8) {
        0 => ShapeMotif::Discs,
        1 => ShapeMotif::Boxes,
        2 => ShapeMotif::Bars,
        _ => ShapeMotif::None,
    }
}

impl ThemeStyle {
    /// Samples one theme for a category anchored at `anchor_hue` whose
    /// texture family is `family`.
    pub fn sample<R: Rng>(
        anchor_hue: f32,
        family: TextureMotif,
        dist: &StyleDistribution,
        rng: &mut R,
    ) -> Self {
        let hue = if rng.gen_bool(f64::from(dist.theme_off_palette)) {
            rng.gen_range(0.0f32..1.0)
        } else {
            (anchor_hue + rng.gen_range(-dist.theme_hue_spread..=dist.theme_hue_spread))
                .rem_euclid(1.0)
        };
        let motif = if rng.gen_bool(f64::from(dist.theme_family_adherence)) {
            sample_motif_in_family(family, rng)
        } else {
            sample_motif(rng)
        };
        Self {
            hue,
            hue_jitter: dist.within_theme_hue_jitter,
            saturation: rng.gen_range(0.25..0.9),
            value: rng.gen_range(0.3..0.9),
            motif,
            motif_strength: rng.gen_range(0.1..0.45),
            shapes: sample_shapes(rng),
            shape_count: (1, dist.max_shapes.max(1)),
            shape_hue_offset: rng.gen_range(0.1..0.6),
            noise_amp: rng.gen_range(dist.noise_amp.0..=dist.noise_amp.1),
        }
    }
}

impl CategoryStyle {
    /// Samples a category style: an anchor hue stratified on the hue circle,
    /// a texture family, and `themes_per_category` themes around them.
    pub fn sample<R: Rng>(
        cat: usize,
        n_categories: usize,
        dist: &StyleDistribution,
        rng: &mut R,
    ) -> Self {
        assert!(n_categories > 0 && cat < n_categories);
        let stratum = cat as f32 / n_categories as f32;
        let anchor_hue = (stratum + rng.gen_range(-0.5..0.5) / n_categories as f32).rem_euclid(1.0);
        let family = sample_motif(rng);
        let n_themes = rng.gen_range(
            dist.themes_per_category.0..=dist.themes_per_category.1.max(dist.themes_per_category.0),
        );
        let themes = (0..n_themes.max(1))
            .map(|_| ThemeStyle::sample(anchor_hue, family, dist, rng))
            .collect();
        Self {
            themes,
            off_theme_prob: dist.off_theme_prob,
        }
    }
}

/// Deterministic image generator for a fixed set of category styles.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyntheticGenerator {
    styles: Vec<CategoryStyle>,
    dist: StyleDistribution,
    width: usize,
    height: usize,
    seed: u64,
}

impl SyntheticGenerator {
    /// Builds a generator for `n_categories` categories of `width × height`
    /// images; styles are sampled deterministically from `seed`.
    pub fn new(n_categories: usize, width: usize, height: usize, seed: u64) -> Self {
        Self::with_distribution(
            n_categories,
            width,
            height,
            seed,
            &StyleDistribution::default(),
        )
    }

    /// As [`Self::new`] but with an explicit style distribution (used by the
    /// calibration ablation).
    pub fn with_distribution(
        n_categories: usize,
        width: usize,
        height: usize,
        seed: u64,
        dist: &StyleDistribution,
    ) -> Self {
        assert!(n_categories > 0, "need at least one category");
        let mut style_rng = StdRng::seed_from_u64(seed ^ 0x5379_4c45); // "STYL"
        let styles = (0..n_categories)
            .map(|c| CategoryStyle::sample(c, n_categories, dist, &mut style_rng))
            .collect();
        Self {
            styles,
            dist: dist.clone(),
            width,
            height,
            seed,
        }
    }

    /// Number of categories.
    pub fn n_categories(&self) -> usize {
        self.styles.len()
    }

    /// The style of a category (inspection / debugging).
    pub fn style(&self, category: usize) -> &CategoryStyle {
        &self.styles[category]
    }

    /// Renders image `index` of `category`. Deterministic in
    /// `(seed, category, index)`.
    pub fn generate(&self, category: usize, index: usize) -> RgbImage {
        let style = &self.styles[category];
        // Decorrelate the per-image stream from the style stream and from
        // neighbouring (category, index) pairs.
        let image_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((category as u64) << 32)
            .wrapping_add(index as u64 + 1);
        let mut rng = StdRng::seed_from_u64(image_seed);

        // Pick the theme: usually one of the category's, occasionally a
        // fresh global outlier theme.
        let outlier;
        let theme = if rng.gen_bool(f64::from(style.off_theme_prob)) {
            outlier = ThemeStyle::sample(
                rng.gen_range(0.0f32..1.0),
                sample_motif(&mut rng),
                &self.dist,
                &mut rng,
            );
            &outlier
        } else {
            &style.themes[rng.gen_range(0..style.themes.len())]
        };
        self.render_theme(theme, &mut rng)
    }

    /// Renders one image of a theme with within-theme jitter.
    fn render_theme(&self, theme: &ThemeStyle, rng: &mut StdRng) -> RgbImage {
        let mut img = RgbImage::new(self.width, self.height);
        let w = self.width as isize;
        let h = self.height as isize;

        // 1. Background gradient, tight around the theme appearance.
        let hue = theme.hue + rng.gen_range(-theme.hue_jitter..=theme.hue_jitter);
        let top = Hsv::new(
            hue + rng.gen_range(-0.015..0.015),
            theme.saturation + rng.gen_range(-0.08..0.08),
            theme.value + rng.gen_range(-0.08..0.08),
        );
        let bottom = Hsv::new(
            hue + rng.gen_range(-0.03..0.03),
            theme.saturation + rng.gen_range(-0.08..0.08),
            theme.value + rng.gen_range(-0.12..0.04),
        );
        draw::fill_vertical_gradient(&mut img, top, bottom);

        // 2. Texture carrier with small per-image parameter jitter.
        match theme.motif {
            TextureMotif::Stripes { angle, frequency } => {
                let a = angle + rng.gen_range(-0.08..0.08);
                let f = frequency * rng.gen_range(0.92..1.08);
                let phase = rng.gen_range(0.0..std::f32::consts::TAU);
                draw::overlay_stripes(&mut img, a, f, theme.motif_strength, phase);
            }
            TextureMotif::Checker { cell } => {
                draw::overlay_checker(&mut img, cell, theme.motif_strength);
            }
            TextureMotif::Blobs { count } => {
                draw::overlay_blobs(&mut img, count, theme.motif_strength, rng);
            }
            TextureMotif::Smooth => {}
        }

        // 3. Foreground shapes in the theme's accent hue.
        let n_shapes = rng.gen_range(theme.shape_count.0..=theme.shape_count.1);
        for _ in 0..n_shapes {
            let shape_hue = hue + theme.shape_hue_offset + rng.gen_range(-0.04..0.04);
            let color =
                Hsv::new(shape_hue, rng.gen_range(0.5..1.0), rng.gen_range(0.5..1.0)).to_rgb();
            match theme.shapes {
                ShapeMotif::Discs => {
                    let r = rng.gen_range((w.min(h) / 14).max(2)..=(w.min(h) / 5).max(3));
                    draw::fill_disc(&mut img, rng.gen_range(0..w), rng.gen_range(0..h), r, color);
                }
                ShapeMotif::Boxes => {
                    let bw = rng.gen_range(self.width / 10..=self.width / 3).max(2);
                    let bh = rng.gen_range(self.height / 10..=self.height / 3).max(2);
                    draw::fill_rect(
                        &mut img,
                        rng.gen_range(-(bw as isize) / 2..w),
                        rng.gen_range(-(bh as isize) / 2..h),
                        bw,
                        bh,
                        color,
                    );
                }
                ShapeMotif::Bars => {
                    let x0 = rng.gen_range(0..w);
                    let y0 = rng.gen_range(0..h);
                    let len = rng.gen_range(w.min(h) / 3..=w.min(h));
                    let angle: f32 = rng.gen_range(-0.2..0.2)
                        + match theme.motif {
                            TextureMotif::Stripes { angle, .. } => angle,
                            _ => rng.gen_range(0.0..std::f32::consts::PI),
                        };
                    let x1 = x0 + (angle.cos() * len as f32) as isize;
                    let y1 = y0 + (angle.sin() * len as f32) as isize;
                    draw::draw_line(&mut img, x0, y0, x1, y1, self.width / 24 + 1, color);
                }
                ShapeMotif::None => break,
            }
        }

        // 4. Distractor clutter: a few shapes of arbitrary hue (off-concept
        // objects appear in real photographs).
        let n_distractors = rng.gen_range(0..=2usize);
        for _ in 0..n_distractors {
            let color = Hsv::new(
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.3..1.0),
                rng.gen_range(0.3..1.0),
            )
            .to_rgb();
            let r = rng.gen_range((w.min(h) / 16).max(2)..=(w.min(h) / 7).max(3));
            draw::fill_disc(&mut img, rng.gen_range(0..w), rng.gen_range(0..h), r, color);
        }

        // 5. Sensor-style pixel noise.
        draw::add_pixel_noise(&mut img, theme.noise_amp, rng);
        img
    }
}

/// A fully materialized corpus: every image of every category plus labels.
#[derive(Clone, Debug)]
pub struct SyntheticCorpus {
    /// Images in category-major order (`category * per_category + index`).
    pub images: Vec<RgbImage>,
    /// Ground-truth category of each image.
    pub labels: Vec<usize>,
    /// Number of categories.
    pub n_categories: usize,
    /// Images per category.
    pub per_category: usize,
}

impl SyntheticCorpus {
    /// Generates the whole corpus eagerly.
    pub fn generate(gen: &SyntheticGenerator, per_category: usize) -> Self {
        let n_categories = gen.n_categories();
        let mut images = Vec::with_capacity(n_categories * per_category);
        let mut labels = Vec::with_capacity(n_categories * per_category);
        for cat in 0..n_categories {
            for idx in 0..per_category {
                images.push(gen.generate(cat, idx));
                labels.push(cat);
            }
        }
        Self {
            images,
            labels,
            n_categories,
            per_category,
        }
    }

    /// Total number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// `true` when the corpus has no images.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g1 = SyntheticGenerator::new(5, 32, 32, 42);
        let g2 = SyntheticGenerator::new(5, 32, 32, 42);
        for cat in 0..5 {
            assert_eq!(g1.generate(cat, 3), g2.generate(cat, 3));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = SyntheticGenerator::new(3, 32, 32, 1);
        let g2 = SyntheticGenerator::new(3, 32, 32, 2);
        assert_ne!(g1.generate(0, 0), g2.generate(0, 0));
    }

    #[test]
    fn different_indices_differ() {
        let g = SyntheticGenerator::new(3, 32, 32, 9);
        assert_ne!(g.generate(1, 0), g.generate(1, 1));
        assert_ne!(g.generate(0, 0), g.generate(1, 0));
    }

    #[test]
    fn corpus_layout() {
        let g = SyntheticGenerator::new(4, 16, 16, 7);
        let corpus = SyntheticCorpus::generate(&g, 3);
        assert_eq!(corpus.len(), 12);
        assert_eq!(corpus.labels[0], 0);
        assert_eq!(corpus.labels[3], 1);
        assert_eq!(corpus.labels[11], 3);
        assert_eq!(corpus.images[5], g.generate(1, 2));
    }

    #[test]
    fn categories_have_multiple_themes() {
        let g = SyntheticGenerator::new(6, 16, 16, 5);
        let dist = StyleDistribution::default();
        for c in 0..6 {
            let n = g.style(c).themes.len();
            assert!(
                (dist.themes_per_category.0..=dist.themes_per_category.1).contains(&n),
                "cat {c} has {n} themes"
            );
        }
    }

    #[test]
    fn on_palette_themes_cluster_near_anchor() {
        // With off-palette probability 0, every theme hue must lie within
        // the configured spread of the category anchor (which itself lies
        // in the category's stratum).
        let dist = StyleDistribution {
            theme_off_palette: 0.0,
            ..StyleDistribution::default()
        };
        let g = SyntheticGenerator::with_distribution(10, 16, 16, 3, &dist);
        for c in 0..10 {
            let stratum = c as f32 / 10.0;
            for (t, theme) in g.style(c).themes.iter().enumerate() {
                let mut d = (theme.hue - stratum).abs();
                if d > 0.5 {
                    d = 1.0 - d;
                }
                // anchor offset (±half stratum) + spread
                let bound = 0.5 / 10.0 + dist.theme_hue_spread + 1e-5;
                assert!(
                    d <= bound,
                    "cat {c} theme {t}: hue {} vs stratum {stratum}",
                    theme.hue
                );
            }
        }
    }

    #[test]
    fn within_theme_images_are_visually_tight() {
        // Two images of the same (single-theme, no-outlier) category must
        // be much closer in mean color than images of a far category.
        let dist = StyleDistribution {
            themes_per_category: (1, 1),
            off_theme_prob: 0.0,
            theme_off_palette: 0.0,
            ..StyleDistribution::default()
        };
        let g = SyntheticGenerator::with_distribution(2, 32, 32, 8, &dist);
        let mean_rgb = |img: &RgbImage| -> [f64; 3] {
            let mut acc = [0.0f64; 3];
            for p in img.pixels() {
                for c in 0..3 {
                    acc[c] += f64::from(p[c]);
                }
            }
            let n = img.len() as f64;
            [acc[0] / n, acc[1] / n, acc[2] / n]
        };
        let dist_rgb = |a: [f64; 3], b: [f64; 3]| -> f64 {
            a.iter()
                .zip(&b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        // Average over several pairs to avoid single-image flukes.
        let mut intra = 0.0;
        let mut inter = 0.0;
        for i in 0..6 {
            intra += dist_rgb(mean_rgb(&g.generate(0, i)), mean_rgb(&g.generate(0, i + 6)));
            inter += dist_rgb(mean_rgb(&g.generate(0, i)), mean_rgb(&g.generate(1, i)));
        }
        assert!(
            inter > intra,
            "single-theme categories should be tighter within ({intra:.1}) than across ({inter:.1})"
        );
    }

    #[test]
    fn images_are_not_degenerate() {
        // Every generated image should have nontrivial variance (noise +
        // texture guarantee it) so feature extraction never divides by zero.
        let g = SyntheticGenerator::new(6, 32, 32, 3);
        for cat in 0..6 {
            let img = g.generate(cat, 0);
            let gray = img.to_gray();
            let n = gray.len() as f32;
            let mean: f32 = gray.as_slice().iter().sum::<f32>() / n;
            let var: f32 = gray
                .as_slice()
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / n;
            assert!(var > 1e-5, "cat {cat} variance {var}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn zero_categories_panics() {
        let _ = SyntheticGenerator::new(0, 16, 16, 0);
    }
}
