//! # lrf-imaging — image substrate for the LRF-CSVM reproduction
//!
//! The paper (Hoi, Lyu & Jin, ICDE 2005) evaluates on images from the COREL
//! CDs and extracts three low-level features: HSV color moments, a Canny
//! edge-direction histogram, and Daubechies-4 wavelet texture entropy. This
//! crate provides everything below the feature extractors:
//!
//! * [`RgbImage`] / [`GrayImage`] — owned raster types.
//! * [`color`] — RGB ↔ HSV conversion.
//! * [`draw`] — shape/gradient/noise rendering primitives.
//! * [`synthetic`] — a seeded, category-parameterized image generator that
//!   stands in for the COREL collection (see `DESIGN.md` §3 for why the
//!   substitution preserves the relevant behaviour).
//! * [`convolve`] — separable convolution, Gaussian blur, Sobel gradients.
//! * [`mod@canny`] — a full Canny edge detector (blur → gradient → non-maximum
//!   suppression → double-threshold hysteresis).
//! * [`wavelet`] — 1-D/2-D Daubechies-4 discrete wavelet transform with
//!   inverse, used both by texture features and by the test suite (perfect
//!   reconstruction / energy-preservation invariants).
//!
//! Everything is deterministic: any randomness flows through caller-provided
//! [`rand::Rng`] instances.

pub mod canny;
pub mod color;
pub mod convolve;
pub mod draw;
pub mod image;
pub mod synthetic;
pub mod wavelet;

pub use crate::image::{GrayImage, RgbImage};
pub use canny::{canny, CannyParams, EdgeMap};
pub use color::{hsv_to_rgb, rgb_to_hsv, Hsv};
pub use synthetic::{CategoryStyle, SyntheticCorpus, SyntheticGenerator, TextureMotif};
