//! Owned raster image types.
//!
//! Two pixel layouts cover every consumer in the workspace:
//!
//! * [`RgbImage`] — interleaved 8-bit RGB, what the synthetic generator
//!   renders and what color-moment extraction reads.
//! * [`GrayImage`] — `f32` luminance in `[0, 1]`, the working format for
//!   convolution, Canny, and the wavelet transform.

use serde::{Deserialize, Serialize};

/// An 8-bit interleaved RGB image.
///
/// Pixels are stored row-major; `(x, y)` addresses column `x` of row `y`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RgbImage {
    width: usize,
    height: usize,
    data: Vec<[u8; 3]>,
}

impl RgbImage {
    /// Creates an image filled with a constant color.
    ///
    /// # Panics
    /// Panics if `width == 0` or `height == 0`.
    pub fn filled(width: usize, height: usize, color: [u8; 3]) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        Self {
            width,
            height,
            data: vec![color; width * height],
        }
    }

    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, [0, 0, 0])
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the image has no pixels (never true for constructed images).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, color: [u8; 3]) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = color;
    }

    /// Sets the pixel only when `(x, y)` is inside the image; silently
    /// ignores out-of-bounds writes (useful for shape rasterization).
    #[inline]
    pub fn set_clipped(&mut self, x: isize, y: isize, color: [u8; 3]) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.data[y as usize * self.width + x as usize] = color;
        }
    }

    /// Immutable access to the raw pixel slice (row-major).
    #[inline]
    pub fn pixels(&self) -> &[[u8; 3]] {
        &self.data
    }

    /// Mutable access to the raw pixel slice (row-major).
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [[u8; 3]] {
        &mut self.data
    }

    /// Converts to a luminance image using the Rec. 601 weights
    /// (0.299 R + 0.587 G + 0.114 B), scaled to `[0, 1]`.
    pub fn to_gray(&self) -> GrayImage {
        let data = self
            .data
            .iter()
            .map(|&[r, g, b]| {
                (0.299 * f32::from(r) + 0.587 * f32::from(g) + 0.114 * f32::from(b)) / 255.0
            })
            .collect();
        GrayImage {
            width: self.width,
            height: self.height,
            data,
        }
    }

    /// Serializes to binary PPM (`P6`), the simplest portable image format;
    /// used by examples to emit viewable sample images without an image
    /// codec dependency.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.reserve(self.data.len() * 3);
        for px in &self.data {
            out.extend_from_slice(px);
        }
        out
    }
}

/// A single-channel `f32` image with values nominally in `[0, 1]`.
///
/// Intermediate processing results (gradients, wavelet coefficients) may
/// exceed the nominal range; no clamping is applied except where documented.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Creates an image filled with a constant intensity.
    ///
    /// # Panics
    /// Panics if `width == 0` or `height == 0`.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        Self {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates an all-zero (black) image.
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, 0.0)
    }

    /// Builds an image from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height` or either dimension is zero.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        assert_eq!(
            data.len(),
            width * height,
            "buffer length must match dimensions"
        );
        Self {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the image has no pixels (never true for constructed images).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the intensity at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Returns the intensity at `(x, y)`, clamping coordinates to the edge
    /// (replicate-padding semantics for filters).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Sets the intensity at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = value;
    }

    /// Immutable access to the raw buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Copies one row into `row` (which must have length `width`).
    pub fn read_row(&self, y: usize, row: &mut [f32]) {
        assert_eq!(row.len(), self.width);
        row.copy_from_slice(&self.data[y * self.width..(y + 1) * self.width]);
    }

    /// Copies one column into `col` (which must have length `height`).
    pub fn read_col(&self, x: usize, col: &mut [f32]) {
        assert_eq!(col.len(), self.height);
        for (y, c) in col.iter_mut().enumerate() {
            *c = self.data[y * self.width + x];
        }
    }

    /// Overwrites one row from `row`.
    pub fn write_row(&mut self, y: usize, row: &[f32]) {
        assert_eq!(row.len(), self.width);
        self.data[y * self.width..(y + 1) * self.width].copy_from_slice(row);
    }

    /// Overwrites one column from `col`.
    pub fn write_col(&mut self, x: usize, col: &[f32]) {
        assert_eq!(col.len(), self.height);
        for (y, &c) in col.iter().enumerate() {
            self.data[y * self.width + x] = c;
        }
    }

    /// Sum of squared intensities; the wavelet tests use this to check
    /// orthonormal energy preservation.
    pub fn energy(&self) -> f64 {
        self.data.iter().map(|&v| f64::from(v) * f64::from(v)).sum()
    }

    /// Extracts the `w × h` sub-image whose top-left corner is `(x0, y0)`.
    ///
    /// # Panics
    /// Panics if the rectangle does not fit inside the image.
    pub fn crop(&self, x0: usize, y0: usize, w: usize, h: usize) -> GrayImage {
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop out of bounds"
        );
        let mut out = GrayImage::new(w, h);
        for y in 0..h {
            let src = &self.data[(y0 + y) * self.width + x0..(y0 + y) * self.width + x0 + w];
            out.data[y * w..(y + 1) * w].copy_from_slice(src);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_filled_and_get_set() {
        let mut img = RgbImage::filled(4, 3, [1, 2, 3]);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.len(), 12);
        assert_eq!(img.get(3, 2), [1, 2, 3]);
        img.set(0, 0, [9, 9, 9]);
        assert_eq!(img.get(0, 0), [9, 9, 9]);
        assert_eq!(img.get(1, 0), [1, 2, 3]);
    }

    #[test]
    fn rgb_set_clipped_ignores_out_of_bounds() {
        let mut img = RgbImage::new(2, 2);
        img.set_clipped(-1, 0, [255, 0, 0]);
        img.set_clipped(0, 5, [255, 0, 0]);
        img.set_clipped(1, 1, [255, 0, 0]);
        assert_eq!(img.get(1, 1), [255, 0, 0]);
        assert_eq!(img.get(0, 0), [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rgb_zero_dimension_panics() {
        let _ = RgbImage::new(0, 4);
    }

    #[test]
    fn gray_conversion_weights() {
        // Pure white maps to 1.0, pure black to 0.0, and the Rec.601 weights
        // order G > R > B.
        let white = RgbImage::filled(1, 1, [255, 255, 255]).to_gray();
        assert!((white.get(0, 0) - 1.0).abs() < 1e-6);
        let black = RgbImage::filled(1, 1, [0, 0, 0]).to_gray();
        assert_eq!(black.get(0, 0), 0.0);
        let r = RgbImage::filled(1, 1, [255, 0, 0]).to_gray().get(0, 0);
        let g = RgbImage::filled(1, 1, [0, 255, 0]).to_gray().get(0, 0);
        let b = RgbImage::filled(1, 1, [0, 0, 255]).to_gray().get(0, 0);
        assert!(g > r && r > b);
        assert!((r + g + b - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ppm_header_and_payload() {
        let img = RgbImage::filled(2, 1, [10, 20, 30]);
        let ppm = img.to_ppm();
        let header = b"P6\n2 1\n255\n";
        assert_eq!(&ppm[..header.len()], header);
        assert_eq!(&ppm[header.len()..], &[10, 20, 30, 10, 20, 30]);
    }

    #[test]
    fn gray_clamped_access() {
        let img = GrayImage::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(img.get_clamped(-5, -5), 1.0);
        assert_eq!(img.get_clamped(10, 10), 4.0);
        assert_eq!(img.get_clamped(1, 0), 2.0);
    }

    #[test]
    fn gray_row_col_roundtrip() {
        let mut img = GrayImage::new(3, 2);
        img.write_row(1, &[1.0, 2.0, 3.0]);
        let mut row = [0.0; 3];
        img.read_row(1, &mut row);
        assert_eq!(row, [1.0, 2.0, 3.0]);

        img.write_col(2, &[7.0, 8.0]);
        let mut col = [0.0; 2];
        img.read_col(2, &mut col);
        assert_eq!(col, [7.0, 8.0]);
        // writing the column must not clobber unrelated cells
        assert_eq!(img.get(0, 1), 1.0);
    }

    #[test]
    fn gray_crop_extracts_expected_window() {
        let img = GrayImage::from_vec(4, 4, (0..16).map(|v| v as f32).collect());
        let sub = img.crop(1, 2, 2, 2);
        assert_eq!(sub.as_slice(), &[9.0, 10.0, 13.0, 14.0]);
    }

    #[test]
    #[should_panic(expected = "crop out of bounds")]
    fn gray_crop_out_of_bounds_panics() {
        let img = GrayImage::new(4, 4);
        let _ = img.crop(3, 3, 2, 2);
    }

    #[test]
    fn gray_energy_sums_squares() {
        let img = GrayImage::from_vec(2, 1, vec![3.0, 4.0]);
        assert!((img.energy() - 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn gray_from_vec_length_mismatch_panics() {
        let _ = GrayImage::from_vec(2, 2, vec![0.0; 3]);
    }
}
