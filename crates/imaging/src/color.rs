//! RGB ↔ HSV color-space conversion.
//!
//! The paper extracts color moments "in each color channel (H, S, and V)";
//! this module provides the conversion used by `lrf-features::color_moments`
//! and by the synthetic generator (which designs palettes in HSV).
//!
//! Conventions: all HSV components are normalized to `[0, 1]` — hue is the
//! usual angle divided by 360°. Using a unit-range hue keeps the three
//! channels commensurate for moment statistics.

use serde::{Deserialize, Serialize};

/// A normalized HSV color; every component lies in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Hsv {
    /// Hue as a fraction of the full circle (`0.0` = red, `1/3` = green, ...).
    pub h: f32,
    /// Saturation.
    pub s: f32,
    /// Value (brightness).
    pub v: f32,
}

impl Hsv {
    /// Constructs an HSV color, wrapping hue into `[0, 1)` and clamping
    /// saturation/value into `[0, 1]`.
    pub fn new(h: f32, s: f32, v: f32) -> Self {
        Self {
            h: h.rem_euclid(1.0),
            s: s.clamp(0.0, 1.0),
            v: v.clamp(0.0, 1.0),
        }
    }

    /// Converts to 8-bit RGB.
    pub fn to_rgb(self) -> [u8; 3] {
        hsv_to_rgb(self)
    }
}

/// Converts an 8-bit RGB pixel into normalized HSV.
///
/// For achromatic pixels (`max == min`) hue is defined as `0.0`.
pub fn rgb_to_hsv(rgb: [u8; 3]) -> Hsv {
    let r = f32::from(rgb[0]) / 255.0;
    let g = f32::from(rgb[1]) / 255.0;
    let b = f32::from(rgb[2]) / 255.0;
    let max = r.max(g).max(b);
    let min = r.min(g).min(b);
    let delta = max - min;

    let h = if delta <= f32::EPSILON {
        0.0
    } else if (max - r).abs() <= f32::EPSILON {
        (((g - b) / delta).rem_euclid(6.0)) / 6.0
    } else if (max - g).abs() <= f32::EPSILON {
        ((b - r) / delta + 2.0) / 6.0
    } else {
        ((r - g) / delta + 4.0) / 6.0
    };
    let s = if max <= f32::EPSILON {
        0.0
    } else {
        delta / max
    };
    Hsv { h, s, v: max }
}

/// Converts a normalized HSV color into 8-bit RGB.
pub fn hsv_to_rgb(hsv: Hsv) -> [u8; 3] {
    let h = hsv.h.rem_euclid(1.0) * 6.0;
    let s = hsv.s.clamp(0.0, 1.0);
    let v = hsv.v.clamp(0.0, 1.0);

    let sector = h.floor() as i32 % 6;
    let f = h - h.floor();
    let p = v * (1.0 - s);
    let q = v * (1.0 - s * f);
    let t = v * (1.0 - s * (1.0 - f));

    let (r, g, b) = match sector {
        0 => (v, t, p),
        1 => (q, v, p),
        2 => (p, v, t),
        3 => (p, q, v),
        4 => (t, p, v),
        _ => (v, p, q),
    };
    [
        (r * 255.0).round().clamp(0.0, 255.0) as u8,
        (g * 255.0).round().clamp(0.0, 255.0) as u8,
        (b * 255.0).round().clamp(0.0, 255.0) as u8,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primary_colors() {
        let red = rgb_to_hsv([255, 0, 0]);
        assert!((red.h - 0.0).abs() < 1e-6 && (red.s - 1.0).abs() < 1e-6);
        let green = rgb_to_hsv([0, 255, 0]);
        assert!((green.h - 1.0 / 3.0).abs() < 1e-3);
        let blue = rgb_to_hsv([0, 0, 255]);
        assert!((blue.h - 2.0 / 3.0).abs() < 1e-3);
    }

    #[test]
    fn achromatic_pixels_have_zero_saturation() {
        for v in [0u8, 17, 128, 255] {
            let hsv = rgb_to_hsv([v, v, v]);
            assert_eq!(hsv.s, 0.0);
            assert_eq!(hsv.h, 0.0);
            assert!((hsv.v - f32::from(v) / 255.0).abs() < 1e-6);
        }
    }

    #[test]
    fn hsv_new_wraps_and_clamps() {
        let c = Hsv::new(1.25, 1.5, -0.2);
        assert!((c.h - 0.25).abs() < 1e-6);
        assert_eq!(c.s, 1.0);
        assert_eq!(c.v, 0.0);
        let d = Hsv::new(-0.25, 0.5, 0.5);
        assert!((d.h - 0.75).abs() < 1e-6);
    }

    #[test]
    fn known_conversion_orange() {
        // 30° orange, fully saturated.
        let rgb = hsv_to_rgb(Hsv {
            h: 30.0 / 360.0,
            s: 1.0,
            v: 1.0,
        });
        assert_eq!(rgb, [255, 128, 0]);
    }

    proptest! {
        /// RGB → HSV → RGB must round-trip within quantization error.
        #[test]
        fn roundtrip_rgb_hsv_rgb(r in 0u8..=255, g in 0u8..=255, b in 0u8..=255) {
            let back = hsv_to_rgb(rgb_to_hsv([r, g, b]));
            prop_assert!((i16::from(back[0]) - i16::from(r)).abs() <= 1);
            prop_assert!((i16::from(back[1]) - i16::from(g)).abs() <= 1);
            prop_assert!((i16::from(back[2]) - i16::from(b)).abs() <= 1);
        }

        /// Conversion output always stays inside the normalized ranges.
        #[test]
        fn hsv_components_normalized(r in 0u8..=255, g in 0u8..=255, b in 0u8..=255) {
            let hsv = rgb_to_hsv([r, g, b]);
            prop_assert!((0.0..=1.0).contains(&hsv.h));
            prop_assert!((0.0..=1.0).contains(&hsv.s));
            prop_assert!((0.0..=1.0).contains(&hsv.v));
        }

        /// Value equals the max RGB channel (definition of V).
        #[test]
        fn value_is_max_channel(r in 0u8..=255, g in 0u8..=255, b in 0u8..=255) {
            let hsv = rgb_to_hsv([r, g, b]);
            let max = r.max(g).max(b);
            prop_assert!((hsv.v - f32::from(max) / 255.0).abs() < 1e-6);
        }
    }
}
