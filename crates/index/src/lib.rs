//! # lrf-index — pluggable ANN retrieval indexes
//!
//! The paper's pipeline opens every query — and every log-collection
//! session — with a nearest-neighbor pass over the whole database. At COREL
//! scale a linear scan is fine; at the millions-of-images scale the ROADMAP
//! targets, retrieval needs a sublinear front-end whose candidates the
//! learned feedback model then re-ranks (the architecture PinView and
//! Barz & Denzler assume). This crate is that front-end:
//!
//! * [`AnnIndex`] — the backend contract: `search`, `batch_search`,
//!   instrumented [`AnnIndex::search_with_stats`], serde persistence.
//! * [`FlatIndex`] — exact search: cache-friendly parallel scan over a
//!   contiguous row-major matrix with a bounded max-heap top-k (no
//!   sort-everything). The default backend; paper-fidelity results are
//!   bit-identical to the full Euclidean ranking.
//! * [`IvfIndex`] — inverted-file index: a k-means coarse quantizer splits
//!   the collection into `nlist` cells; queries scan only the `nprobe`
//!   nearest cells.
//! * [`LshIndex`] — locality-sensitive hashing: random-hyperplane sign
//!   signatures over multiple tables with margin-ordered multi-probing.
//!
//! Distances are Euclidean; all internal comparisons use *squared*
//! distance with [`f64::total_cmp`] and break ties by ascending id, so
//! rankings are total and deterministic even in the presence of NaN
//! features or duplicate images.
//!
//! ## Picking a backend
//!
//! | backend | returns | build cost | query cost | when |
//! |---|---|---|---|---|
//! | [`FlatIndex`] | exact | copy | O(N·d) but parallel + heap | ≤ ~100k images, or when fidelity is non-negotiable |
//! | [`IvfIndex`] | ≥ ~0.9 recall | k-means | O((nlist + N·nprobe/nlist)·d) | large N with cluster structure (real image corpora) |
//! | [`LshIndex`] | ≥ ~0.9 recall | hashing | O(tables·bits·d + candidates·d) | very high N, loose recall targets, streaming inserts |

use serde::{Deserialize, Serialize};

pub mod flat;
pub mod ivf;
pub mod lsh;
pub mod merge;

pub use flat::{exact_top_k, FlatIndex, FlatShard};
pub use ivf::{IvfConfig, IvfIndex};
pub use lsh::{LshConfig, LshIndex};
pub use merge::{merge_top_k, merge_top_k_d2};

/// One search hit: `(image id, Euclidean distance)`.
pub type Neighbor = (usize, f64);

/// Instrumentation for one query: how much work the backend actually did.
/// The whole point of the approximate backends is that
/// `distance_evals` comes out far below `N`; tests assert exactly that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Full-dimensional distance computations performed (including, for
    /// IVF, query↔centroid distances).
    pub distance_evals: usize,
    /// Candidates whose exact distance was evaluated.
    pub candidates: usize,
    /// Inverted lists / hash buckets inspected.
    pub buckets_probed: usize,
}

/// The backend contract every index implements.
///
/// `search` returns up to `k` neighbors sorted by ascending distance with
/// ties broken by ascending id. Exact backends always return
/// `min(k, len)` hits; hash-based backends may return fewer when probing
/// finds fewer candidates.
pub trait AnnIndex: Send + Sync {
    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// `true` when the index holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector dimensionality.
    fn dim(&self) -> usize;

    /// Backend name for reports and benches.
    fn name(&self) -> &'static str;

    /// The `k` nearest neighbors of `query`, with work counters.
    ///
    /// # Panics
    /// Panics if `query.len() != self.dim()`.
    fn search_with_stats(&self, query: &[f64], k: usize) -> (Vec<Neighbor>, SearchStats);

    /// The `k` nearest neighbors of `query`.
    fn search(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        self.search_with_stats(query, k).0
    }

    /// Searches many queries; backends may parallelize.
    fn batch_search(&self, queries: &[Vec<f64>], k: usize) -> Vec<Vec<Neighbor>> {
        queries.iter().map(|q| self.search(q, k)).collect()
    }
}

/// Fraction of `exact`'s ids that `approx` recovered (recall@k when both
/// sides hold k hits). Standard evaluation metric for ANN backends.
pub fn recall(exact: &[Neighbor], approx: &[Neighbor]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let found: std::collections::HashSet<usize> = approx.iter().map(|&(id, _)| id).collect();
    let hit = exact.iter().filter(|&&(id, _)| found.contains(&id)).count();
    hit as f64 / exact.len() as f64
}

/// Serializes an index (or anything serde-capable) as JSON bytes.
pub fn to_json<T: Serialize>(index: &T) -> Vec<u8> {
    serde_json::to_vec(index).expect("index serialization is infallible")
}

/// Restores an index from [`to_json`] bytes.
pub fn from_json<T: Deserialize>(bytes: &[u8]) -> Result<T, PersistError> {
    serde_json::from_slice(bytes).map_err(|e| PersistError(e.to_string()))
}

/// Saves an index to a file, atomically (temp + fsync + rename): a crash
/// mid-save leaves the previous index file intact. Routed through the
/// fault-injectable storage layer like all first-party file IO.
pub fn save<T: Serialize>(index: &T, path: &std::path::Path) -> std::io::Result<()> {
    lrf_storage::atomic_write(&lrf_storage::StdIo, path, &to_json(index))
}

/// Loads an index from a file written by [`save`].
pub fn load<T: Deserialize>(path: &std::path::Path) -> Result<T, PersistError> {
    use lrf_storage::StorageIo as _;
    let bytes = lrf_storage::StdIo
        .read(path)
        .map_err(|e| PersistError(e.to_string()))?;
    from_json(&bytes)
}

/// An index persistence error (I/O or format).
#[derive(Debug)]
pub struct PersistError(pub String);

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "index persistence error: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

// ---------------------------------------------------------------------------
// Shared internals
// ---------------------------------------------------------------------------

/// Squared Euclidean distance (the hot loop: no sqrt, no bounds checks
/// beyond the slice zip).
#[inline]
pub(crate) fn d2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// A bounded top-k collector: max-heap of the best `k` `(d², id)` pairs
/// seen so far, ordered by `(total_cmp(d²), id)`.
pub(crate) struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<HeapEntry>,
}

#[derive(PartialEq)]
struct HeapEntry {
    d2: f64,
    id: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.d2.total_cmp(&other.d2).then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl TopK {
    pub(crate) fn new(k: usize) -> Self {
        Self {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k + 1),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, id: usize, d2: f64) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry { d2, id });
            return;
        }
        let worst = self.heap.peek().expect("heap holds k entries");
        if (HeapEntry { d2, id }) < *worst {
            self.heap.pop();
            self.heap.push(HeapEntry { d2, id });
        }
    }

    /// Ascending `(id, √d²)` pairs.
    pub(crate) fn into_sorted(self) -> Vec<Neighbor> {
        let mut entries: Vec<HeapEntry> = self.heap.into_vec();
        entries.sort_unstable();
        entries.into_iter().map(|e| (e.id, e.d2.sqrt())).collect()
    }

    /// Ascending `(id, d²)` pairs (for merging partial results).
    pub(crate) fn into_sorted_d2(self) -> Vec<(usize, f64)> {
        let mut entries: Vec<HeapEntry> = self.heap.into_vec();
        entries.sort_unstable();
        entries.into_iter().map(|e| (e.id, e.d2)).collect()
    }
}

/// Shared test fixture: clustered synthetic data (the regime the
/// approximate backends are built for).
#[cfg(test)]
pub(crate) mod testutil {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// `n_clusters` centers in `[-1,1]^dim`, points jittered ±`spread`.
    pub(crate) fn clustered(
        n: usize,
        dim: usize,
        n_clusters: usize,
        spread: f64,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<f64> = (0..n_clusters * dim)
            .map(|_| rng.gen_range(-1.0f64..1.0))
            .collect();
        let mut data = Vec::with_capacity(n * dim);
        for i in 0..n {
            let c = i % n_clusters;
            for d in 0..dim {
                data.push(centers[c * dim + d] + rng.gen_range(-spread..spread));
            }
        }
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_keeps_the_smallest() {
        let mut tk = TopK::new(3);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 4.0), (3, 0.5), (4, 9.0)] {
            tk.push(id, d);
        }
        let got = tk.into_sorted_d2();
        assert_eq!(got, vec![(3, 0.5), (1, 1.0), (2, 4.0)]);
    }

    #[test]
    fn top_k_ties_break_by_id() {
        let mut tk = TopK::new(2);
        for id in [3, 1, 2, 0] {
            tk.push(id, 7.0);
        }
        let got = tk.into_sorted_d2();
        assert_eq!(got, vec![(0, 7.0), (1, 7.0)]);
    }

    #[test]
    fn top_k_zero_and_underfull() {
        let mut tk = TopK::new(0);
        tk.push(0, 1.0);
        assert!(tk.into_sorted().is_empty());
        let mut tk = TopK::new(5);
        tk.push(0, 4.0);
        assert_eq!(tk.into_sorted(), vec![(0, 2.0)]);
    }

    #[test]
    fn top_k_orders_nan_last() {
        let mut tk = TopK::new(3);
        tk.push(0, f64::NAN);
        tk.push(1, 1.0);
        tk.push(2, 2.0);
        tk.push(3, 0.5);
        let got = tk.into_sorted_d2();
        assert_eq!(
            got.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![3, 1, 2]
        );
    }

    #[test]
    fn recall_counts_overlap() {
        let exact = vec![(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0)];
        let approx = vec![(0, 0.0), (2, 2.0), (9, 0.1), (8, 0.2)];
        assert!((recall(&exact, &approx) - 0.5).abs() < 1e-12);
        assert_eq!(recall(&[], &approx), 1.0);
    }
}
