//! Random-hyperplane LSH with multi-table, margin-ordered multi-probing.
//!
//! Each table draws `n_bits` random hyperplanes; a vector's signature is
//! the sign pattern of its projections. Near vectors agree on most signs,
//! so a query's bucket (plus the buckets reached by flipping its
//! lowest-margin bits — the projections most likely to have the "wrong"
//! sign) concentrates its true neighbors. Candidates from all tables are
//! pooled, deduplicated, and re-ranked by exact distance.

use crate::{d2, AnnIndex, Neighbor, SearchStats, TopK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// LSH build/search parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LshConfig {
    /// Number of independent hash tables (recall grows with tables, memory
    /// and query cost linearly so).
    pub n_tables: usize,
    /// Sign bits per table (selectivity: expected bucket size ≈ N/2^bits).
    pub n_bits: usize,
    /// Extra buckets probed per table by flipping the lowest-margin bits
    /// (0 = exact-bucket lookup only).
    pub probes: usize,
    /// Seed for hyperplane sampling; builds are deterministic per seed.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            n_tables: 8,
            n_bits: 12,
            probes: 8,
            seed: 0x0015_4a54,
        }
    }
}

/// One hash table: sorted `(signature, ids)` buckets (sorted pairs instead
/// of a HashMap so the structure serializes naturally and lookups stay
/// cache-friendly).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct Table {
    /// Row-major `n_bits × dim` hyperplane normals.
    planes: Vec<f64>,
    /// Buckets sorted by signature for binary search.
    buckets: Vec<(u32, Vec<u32>)>,
}

impl Table {
    fn signature_and_margins(&self, dim: usize, v: &[f64]) -> (u32, Vec<f64>) {
        let mut sig = 0u32;
        let mut margins = Vec::with_capacity(self.planes.len() / dim);
        for (bit, plane) in self.planes.chunks_exact(dim).enumerate() {
            let proj: f64 = plane.iter().zip(v).map(|(p, x)| p * x).sum();
            if proj >= 0.0 {
                sig |= 1 << bit;
            }
            margins.push(proj.abs());
        }
        (sig, margins)
    }

    fn bucket(&self, sig: u32) -> Option<&[u32]> {
        self.buckets
            .binary_search_by_key(&sig, |&(s, _)| s)
            .ok()
            .map(|i| self.buckets[i].1.as_slice())
    }
}

/// The multi-table LSH index. The raw matrix is [`Arc`]-shared with the
/// caller ([`LshIndex::build_shared`]); only the hyperplanes and buckets
/// are index-owned.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LshIndex {
    data: Arc<Vec<f64>>,
    dim: usize,
    n_bits: usize,
    tables: Vec<Table>,
    /// Default probe count for [`AnnIndex::search`].
    probes: usize,
}

impl LshIndex {
    /// Builds the index over a row-major matrix (copies the data; prefer
    /// [`Self::build_shared`] when the matrix is already behind an `Arc`).
    ///
    /// # Panics
    /// Panics if `dim == 0`, `data.len()` is not a multiple of `dim`, the
    /// collection is empty, `n_tables == 0`, or `n_bits ∉ [1, 24]`.
    pub fn build(data: &[f64], dim: usize, config: &LshConfig) -> Self {
        Self::build_shared(Arc::new(data.to_vec()), dim, config)
    }

    /// Builds the index over a shared row-major matrix **without copying
    /// it** — hashing reads the data in place and the finished index holds
    /// the same allocation the caller does.
    ///
    /// # Panics
    /// As [`Self::build`].
    pub fn build_shared(shared: Arc<Vec<f64>>, dim: usize, config: &LshConfig) -> Self {
        let data: &[f64] = &shared;
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
        let n = data.len() / dim;
        assert!(n > 0, "cannot build an LSH index over an empty collection");
        assert!(config.n_tables > 0, "need at least one table");
        assert!(
            (1..=24).contains(&config.n_bits),
            "n_bits must be in [1, 24], got {}",
            config.n_bits
        );

        let mut rng = StdRng::seed_from_u64(config.seed);
        let tables = (0..config.n_tables)
            .map(|_| {
                let planes: Vec<f64> = (0..config.n_bits * dim)
                    .map(|_| gaussian(&mut rng))
                    .collect();
                let mut table = Table {
                    planes,
                    buckets: Vec::new(),
                };
                let mut pairs: Vec<(u32, u32)> = data
                    .chunks_exact(dim)
                    .enumerate()
                    .map(|(i, row)| (table.signature_and_margins(dim, row).0, i as u32))
                    .collect();
                pairs.sort_unstable();
                for (sig, id) in pairs {
                    match table.buckets.last_mut() {
                        Some((s, ids)) if *s == sig => ids.push(id),
                        _ => table.buckets.push((sig, vec![id])),
                    }
                }
                table
            })
            .collect();

        Self {
            data: shared,
            dim,
            n_bits: config.n_bits,
            tables,
            probes: config.probes,
        }
    }

    /// The shared handle to the indexed matrix.
    pub fn shared_data(&self) -> Arc<Vec<f64>> {
        Arc::clone(&self.data)
    }

    /// Number of hash tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// The default probe count used by trait-object searches.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Adjusts the default probe count (extra flipped-bit buckets per
    /// table; clamped to the signature width).
    pub fn set_probes(&mut self, probes: usize) {
        self.probes = probes.min(self.n_bits);
    }

    /// Search with an explicit probe count.
    pub fn search_probes(
        &self,
        query: &[f64],
        k: usize,
        probes: usize,
    ) -> (Vec<Neighbor>, SearchStats) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let n = self.data.len() / self.dim;
        let k = k.min(n);
        if k == 0 {
            return (Vec::new(), SearchStats::default());
        }
        let probes = probes.min(self.n_bits);

        // Dedup over the candidate set (small) rather than an O(N) bitmap
        // per query — the backend's query cost must stay sublinear in N.
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut top = TopK::new(k);
        let mut candidates = 0usize;
        let mut buckets_probed = 0usize;
        for table in &self.tables {
            let (sig, margins) = table.signature_and_margins(self.dim, query);
            // Probe sequence: exact bucket, then single-bit flips ordered
            // by ascending margin (least-confident sign first).
            let mut flip_order: Vec<usize> = (0..self.n_bits).collect();
            flip_order.sort_by(|&a, &b| margins[a].total_cmp(&margins[b]).then(a.cmp(&b)));
            let probe_sigs =
                std::iter::once(sig).chain(flip_order.iter().take(probes).map(|&b| sig ^ (1 << b)));
            for probe_sig in probe_sigs {
                buckets_probed += 1;
                let Some(ids) = table.bucket(probe_sig) else {
                    continue;
                };
                for &id in ids {
                    if !seen.insert(id) {
                        continue;
                    }
                    let id = id as usize;
                    candidates += 1;
                    let dist = d2(query, &self.data[id * self.dim..(id + 1) * self.dim]);
                    top.push(id, dist);
                }
            }
        }
        let stats = SearchStats {
            distance_evals: candidates,
            candidates,
            buckets_probed,
        };
        (top.into_sorted(), stats)
    }
}

/// Standard normal via Box–Muller (the vendored rand has no distributions
/// module).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl AnnIndex for LshIndex {
    fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &'static str {
        "lsh"
    }

    fn search_with_stats(&self, query: &[f64], k: usize) -> (Vec<Neighbor>, SearchStats) {
        self.search_probes(query, k, self.probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::recall;
    use crate::testutil::clustered;

    #[test]
    fn build_is_deterministic() {
        let data = clustered(300, 8, 6, 0.1, 2);
        let cfg = LshConfig::default();
        assert_eq!(
            LshIndex::build(&data, 8, &cfg),
            LshIndex::build(&data, 8, &cfg)
        );
    }

    #[test]
    fn recall_at_20_beats_090_with_less_distance_work() {
        let dim = 16;
        let n = 4000;
        let data = clustered(n, dim, 25, 0.08, 13);
        let flat = FlatIndex::build(&data, dim);
        let lsh = LshIndex::build(
            &data,
            dim,
            &LshConfig {
                n_tables: 10,
                n_bits: 10,
                probes: 6,
                ..Default::default()
            },
        );
        let mut total_recall = 0.0;
        let mut total_evals = 0usize;
        let queries = 40;
        for q in 0..queries {
            let id = (q * 53) % n;
            let query = data[id * dim..(id + 1) * dim].to_vec();
            let exact = flat.search(&query, 20);
            let (approx, stats) = lsh.search_with_stats(&query, 20);
            total_recall += recall(&exact, &approx);
            total_evals += stats.distance_evals;
        }
        let mean = total_recall / queries as f64;
        assert!(mean >= 0.9, "LSH recall@20 {mean} below target");
        let mean_evals = total_evals / queries;
        assert!(
            mean_evals < n / 2,
            "LSH evaluated {mean_evals} of {n} vectors on average — no pruning"
        );
    }

    #[test]
    fn more_probes_find_more_candidates() {
        let data = clustered(1000, 8, 10, 0.1, 4);
        let lsh = LshIndex::build(
            &data,
            8,
            &LshConfig {
                n_tables: 4,
                n_bits: 12,
                probes: 0,
                ..Default::default()
            },
        );
        let q = data[0..8].to_vec();
        let (_, none) = lsh.search_probes(&q, 20, 0);
        let (_, many) = lsh.search_probes(&q, 20, 8);
        assert!(many.candidates >= none.candidates);
        assert!(many.buckets_probed > none.buckets_probed);
    }

    #[test]
    fn query_point_finds_itself() {
        // A vector always lands in its own bucket in every table, so
        // probing the exact bucket must return the point itself first.
        let data = clustered(500, 8, 8, 0.15, 6);
        let lsh = LshIndex::build(&data, 8, &LshConfig::default());
        for id in [0usize, 123, 499] {
            let q = data[id * 8..(id + 1) * 8].to_vec();
            let hits = lsh.search(&q, 1);
            assert_eq!(hits.first().map(|&(i, _)| i), Some(id));
        }
    }

    #[test]
    fn persistence_roundtrip() {
        let data = clustered(80, 4, 4, 0.1, 8);
        let lsh = LshIndex::build(
            &data,
            4,
            &LshConfig {
                n_tables: 3,
                n_bits: 6,
                ..Default::default()
            },
        );
        let back: LshIndex = crate::from_json(&crate::to_json(&lsh)).unwrap();
        assert_eq!(back, lsh);
        let q = &data[0..4];
        assert_eq!(back.search(q, 5), lsh.search(q, 5));
    }

    #[test]
    fn set_probes_clamps_to_bits() {
        let data = clustered(50, 4, 2, 0.1, 1);
        let mut lsh = LshIndex::build(
            &data,
            4,
            &LshConfig {
                n_bits: 6,
                ..Default::default()
            },
        );
        lsh.set_probes(100);
        assert_eq!(lsh.probes(), 6);
    }
}
