//! K-way merge of per-shard top-k results — the gather half of a sharded
//! scatter-gather search.
//!
//! Every comparison is on **squared** distance with [`f64::total_cmp`] and
//! ascending-id tie-breaks, the same `(d², id)` order the single-index
//! scan uses internally. Merging on `sqrt`ed distances would be subtly
//! wrong: two distinct `d²` values can round to the same `sqrt`, turning a
//! strict order into a tie and letting shard arrival order leak into the
//! ranking. Callers take square roots only after the merge
//! ([`merge_top_k`]), which is also exactly when [`crate::FlatIndex`]
//! takes them — so a sharded search is bit-identical to the unsharded one
//! by construction (property-tested in `lrf-service`).

use crate::Neighbor;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Entry ordering for the merge heap: ascending `(total_cmp(d²), id)`.
/// NaN distances sort last, so a broken feature row cannot panic the
/// merge or float to the top.
#[derive(PartialEq)]
struct MergeKey {
    d2: f64,
    id: usize,
}

impl Eq for MergeKey {}

impl Ord for MergeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.d2.total_cmp(&other.d2).then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for MergeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Merges per-shard result lists — each ascending by `(d², id)`, as
/// [`crate::FlatShard::search_d2`] returns them — into the global top `k`,
/// still as ascending `(id, d²)` pairs.
///
/// Classic k-way heap merge: the heap holds one cursor per non-exhausted
/// list, so the cost is `O(total log shards)` and independent of how the
/// ids were partitioned. Shards partition the id space, so no id appears
/// twice; the output is exactly what one bounded-heap scan over the union
/// would have produced.
///
/// # Panics
/// Debug-panics if a list is not ascending by `(d², id)` — a shard
/// protocol violation, not a data property.
pub fn merge_top_k_d2(partials: &[Vec<(usize, f64)>], k: usize) -> Vec<(usize, f64)> {
    #[cfg(debug_assertions)]
    for list in partials {
        for w in list.windows(2) {
            debug_assert!(
                MergeKey {
                    d2: w[0].1,
                    id: w[0].0
                } <= MergeKey {
                    d2: w[1].1,
                    id: w[1].0
                },
                "shard result list not ascending by (d², id)"
            );
        }
    }

    // Min-heap of (next entry, which list, cursor into that list).
    let mut heap: BinaryHeap<Reverse<(MergeKey, usize, usize)>> = partials
        .iter()
        .enumerate()
        .filter(|(_, list)| !list.is_empty())
        .map(|(s, list)| {
            let (id, d2) = list[0];
            Reverse((MergeKey { d2, id }, s, 0))
        })
        .collect();

    let mut merged = Vec::with_capacity(k.min(partials.iter().map(Vec::len).sum()));
    while merged.len() < k {
        let Some(Reverse((key, s, i))) = heap.pop() else {
            break;
        };
        merged.push((key.id, key.d2));
        if let Some(&(id, d2)) = partials[s].get(i + 1) {
            heap.push(Reverse((MergeKey { d2, id }, s, i + 1)));
        }
    }
    merged
}

/// [`merge_top_k_d2`] with the final `d² → √d²` conversion applied,
/// yielding the [`Neighbor`] form the [`crate::AnnIndex`] contract
/// returns. The sqrt happens strictly *after* the merge — see the module
/// docs for why the order matters.
pub fn merge_top_k(partials: &[Vec<(usize, f64)>], k: usize) -> Vec<Neighbor> {
    merge_top_k_d2(partials, k)
        .into_iter()
        .map(|(id, d2)| (id, d2.sqrt()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::{FlatIndex, FlatShard};
    use crate::AnnIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    #[test]
    fn merge_of_sorted_lists_is_globally_sorted_top_k() {
        let a = vec![(0, 0.5), (3, 2.0), (5, 9.0)];
        let b = vec![(1, 0.5), (2, 1.0)];
        let c = vec![];
        let got = merge_top_k_d2(&[a, b, c], 4);
        // Equal d² 0.5 ties break by id: 0 before 1.
        assert_eq!(got, vec![(0, 0.5), (1, 0.5), (2, 1.0), (3, 2.0)]);
    }

    #[test]
    fn merge_clamps_k_and_handles_empty() {
        assert!(merge_top_k_d2(&[], 5).is_empty());
        assert!(merge_top_k_d2(&[vec![]], 5).is_empty());
        let got = merge_top_k_d2(&[vec![(7, 1.0)]], 5);
        assert_eq!(got, vec![(7, 1.0)]);
        assert!(merge_top_k_d2(&[vec![(7, 1.0)]], 0).is_empty());
    }

    #[test]
    fn nan_distances_merge_last_without_panicking() {
        let a = vec![(0, 1.0), (2, f64::NAN)];
        let b = vec![(1, 3.0)];
        let got = merge_top_k_d2(&[a, b], 3);
        assert_eq!(got[0], (0, 1.0));
        assert_eq!(got[1], (1, 3.0));
        assert_eq!(got[2].0, 2);
        assert!(got[2].1.is_nan());
    }

    #[test]
    fn sharded_search_is_bit_identical_to_flat() {
        // The tentpole invariant at the index layer: scatter over shards +
        // d²-merge + sqrt == one FlatIndex search, bit for bit, including
        // duplicated rows whose tie order is id-based.
        let dim = 6;
        let mut rng = StdRng::seed_from_u64(31);
        let mut data: Vec<f64> = (0..97 * dim).map(|_| rng.gen_range(-1.0f64..1.0)).collect();
        // Plant duplicate rows across shard boundaries to exercise ties.
        for id in [10usize, 50, 90] {
            let src: Vec<f64> = data[0..dim].to_vec();
            data[id * dim..(id + 1) * dim].copy_from_slice(&src);
        }
        let data = Arc::new(data);
        let flat = FlatIndex::from_shared(Arc::clone(&data), dim);
        for n_shards in [1usize, 2, 5] {
            let shards = FlatShard::split_shared(Arc::clone(&data), dim, n_shards);
            for q in 0..8 {
                let query: Vec<f64> = (0..dim)
                    .map(|d| data[(q * 11 % 97) * dim + d] + 1e-3 * d as f64)
                    .collect();
                let partials: Vec<Vec<(usize, f64)>> =
                    shards.iter().map(|s| s.search_d2(&query, 12).0).collect();
                let merged = merge_top_k(&partials, 12);
                assert_eq!(merged, flat.search(&query, 12), "n_shards={n_shards} q={q}");
            }
        }
    }
}
