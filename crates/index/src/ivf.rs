//! Inverted-file index (IVF) with a k-means coarse quantizer.
//!
//! Build: Lloyd's k-means (seeded, deterministic) partitions the collection
//! into `nlist` cells; each cell keeps the ids assigned to its centroid.
//! Search: the query is compared against all centroids (cheap — `nlist` ≪
//! `N`), the `nprobe` nearest cells are scanned exactly, everything else is
//! skipped. On clustered data — which real image features are — recall
//! stays high while distance work drops by roughly `nlist/nprobe`.

use crate::{d2, AnnIndex, Neighbor, SearchStats, TopK};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// IVF build/search parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IvfConfig {
    /// Number of k-means cells. Rule of thumb: ~√N; clamped to the
    /// collection size at build time.
    pub nlist: usize,
    /// Cells scanned per query (the recall/speed knob; raise until the
    /// recall target holds).
    pub nprobe: usize,
    /// Lloyd iteration cap (k-means usually converges much earlier).
    pub max_iters: usize,
    /// Seed for centroid initialization; builds are deterministic per seed.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            nlist: 64,
            nprobe: 8,
            max_iters: 15,
            seed: 0x1f0_5eed,
        }
    }
}

/// The inverted-file index. The raw matrix is [`Arc`]-shared with the
/// caller ([`IvfIndex::build_shared`]); only the centroids and the
/// inverted lists are index-owned.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IvfIndex {
    data: Arc<Vec<f64>>,
    dim: usize,
    /// Row-major `nlist × dim` centroid matrix.
    centroids: Vec<f64>,
    /// `lists[c]` = ids assigned to centroid `c`, ascending.
    lists: Vec<Vec<u32>>,
    /// Default probe count for [`AnnIndex::search`].
    nprobe: usize,
}

impl IvfIndex {
    /// Builds the index over a row-major matrix (copies the data; prefer
    /// [`Self::build_shared`] when the matrix is already behind an `Arc`).
    ///
    /// # Panics
    /// Panics if `dim == 0`, `data.len()` is not a multiple of `dim`, the
    /// collection is empty, or `config.nlist == 0` / `config.nprobe == 0`.
    pub fn build(data: &[f64], dim: usize, config: &IvfConfig) -> Self {
        Self::build_shared(Arc::new(data.to_vec()), dim, config)
    }

    /// Builds the index over a shared row-major matrix **without copying
    /// it** — k-means reads the data in place and the finished index holds
    /// the same allocation the caller does.
    ///
    /// # Panics
    /// As [`Self::build`].
    pub fn build_shared(shared: Arc<Vec<f64>>, dim: usize, config: &IvfConfig) -> Self {
        let data: &[f64] = &shared;
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
        let n = data.len() / dim;
        assert!(n > 0, "cannot build an IVF index over an empty collection");
        assert!(config.nlist > 0, "nlist must be positive");
        assert!(config.nprobe > 0, "nprobe must be positive");
        let nlist = config.nlist.min(n);

        // --- Seeded initialization: nlist distinct points. ---
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(&mut rng);
        let mut centroids: Vec<f64> = Vec::with_capacity(nlist * dim);
        for &id in ids.iter().take(nlist) {
            centroids.extend_from_slice(&data[id * dim..(id + 1) * dim]);
        }

        // --- Lloyd iterations. ---
        let mut assignment = vec![0usize; n];
        for _iter in 0..config.max_iters.max(1) {
            let mut changed = false;
            for (i, row) in data.chunks_exact(dim).enumerate() {
                let best = nearest_centroid(&centroids, dim, row);
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            // Recompute means; an emptied cell re-seeds on the farthest
            // point from its nearest centroid to keep all cells useful.
            let mut sums = vec![0.0f64; nlist * dim];
            let mut counts = vec![0usize; nlist];
            for (i, row) in data.chunks_exact(dim).enumerate() {
                let c = assignment[i];
                counts[c] += 1;
                for (s, x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(row) {
                    *s += x;
                }
            }
            for c in 0..nlist {
                if counts[c] == 0 {
                    let far = farthest_point(data, dim, &centroids);
                    centroids[c * dim..(c + 1) * dim]
                        .copy_from_slice(&data[far * dim..(far + 1) * dim]);
                    changed = true;
                } else {
                    for (dst, s) in centroids[c * dim..(c + 1) * dim]
                        .iter_mut()
                        .zip(&sums[c * dim..(c + 1) * dim])
                    {
                        *dst = s / counts[c] as f64;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // --- Final assignment into inverted lists. ---
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for (i, row) in data.chunks_exact(dim).enumerate() {
            lists[nearest_centroid(&centroids, dim, row)].push(i as u32);
        }

        Self {
            data: shared,
            dim,
            centroids,
            lists,
            nprobe: config.nprobe,
        }
    }

    /// The shared handle to the indexed matrix.
    pub fn shared_data(&self) -> Arc<Vec<f64>> {
        Arc::clone(&self.data)
    }

    /// Number of cells actually built.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// The default probe count used by trait-object searches.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Adjusts the default probe count (clamped to `[1, nlist]`).
    pub fn set_nprobe(&mut self, nprobe: usize) {
        self.nprobe = nprobe.clamp(1, self.nlist());
    }

    /// Search with an explicit probe count.
    pub fn search_nprobe(
        &self,
        query: &[f64],
        k: usize,
        nprobe: usize,
    ) -> (Vec<Neighbor>, SearchStats) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let nlist = self.nlist();
        let nprobe = nprobe.clamp(1, nlist);
        let n = self.data.len() / self.dim;
        let k = k.min(n);
        if k == 0 {
            return (Vec::new(), SearchStats::default());
        }

        // Rank cells by centroid distance.
        let mut cells: Vec<(usize, f64)> = self
            .centroids
            .chunks_exact(self.dim)
            .enumerate()
            .map(|(c, cen)| (c, d2(query, cen)))
            .collect();
        cells.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));

        let mut top = TopK::new(k);
        let mut candidates = 0usize;
        for &(c, _) in cells.iter().take(nprobe) {
            for &id in &self.lists[c] {
                let id = id as usize;
                let dist = d2(query, &self.data[id * self.dim..(id + 1) * self.dim]);
                candidates += 1;
                top.push(id, dist);
            }
        }
        let stats = SearchStats {
            distance_evals: nlist + candidates,
            candidates,
            buckets_probed: nprobe,
        };
        (top.into_sorted(), stats)
    }
}

fn nearest_centroid(centroids: &[f64], dim: usize, row: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (c, cen) in centroids.chunks_exact(dim).enumerate() {
        let d = d2(row, cen);
        if d.total_cmp(&best_d).is_lt() {
            best = c;
            best_d = d;
        }
    }
    best
}

/// Index of the point farthest from its nearest centroid (used to re-seed
/// emptied cells).
fn farthest_point(data: &[f64], dim: usize, centroids: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_d = -1.0f64;
    for (i, row) in data.chunks_exact(dim).enumerate() {
        let c = nearest_centroid(centroids, dim, row);
        let d = d2(row, &centroids[c * dim..(c + 1) * dim]);
        if d > best_d {
            best = i;
            best_d = d;
        }
    }
    best
}

impl AnnIndex for IvfIndex {
    fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &'static str {
        "ivf"
    }

    fn search_with_stats(&self, query: &[f64], k: usize) -> (Vec<Neighbor>, SearchStats) {
        self.search_nprobe(query, k, self.nprobe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::recall;
    use crate::testutil::clustered;

    #[test]
    fn build_is_deterministic() {
        let data = clustered(500, 8, 10, 0.1, 3);
        let cfg = IvfConfig {
            nlist: 16,
            ..Default::default()
        };
        assert_eq!(
            IvfIndex::build(&data, 8, &cfg),
            IvfIndex::build(&data, 8, &cfg)
        );
    }

    #[test]
    fn recall_at_20_beats_090_with_less_distance_work() {
        let dim = 16;
        let n = 4000;
        let data = clustered(n, dim, 25, 0.08, 7);
        let flat = FlatIndex::build(&data, dim);
        let ivf = IvfIndex::build(
            &data,
            dim,
            &IvfConfig {
                nlist: 32,
                nprobe: 8,
                ..Default::default()
            },
        );
        let mut total_recall = 0.0;
        let queries = 40;
        for q in 0..queries {
            let id = (q * 37) % n;
            let query = data[id * dim..(id + 1) * dim].to_vec();
            let exact = flat.search(&query, 20);
            let (approx, stats) = ivf.search_with_stats(&query, 20);
            total_recall += recall(&exact, &approx);
            assert!(
                stats.distance_evals < n / 2,
                "IVF probed {} of {n} vectors — no pruning happened",
                stats.distance_evals
            );
            assert_eq!(stats.buckets_probed, 8);
        }
        let mean = total_recall / queries as f64;
        assert!(mean >= 0.9, "IVF recall@20 {mean} below target");
    }

    #[test]
    fn full_probe_equals_exact_search() {
        let dim = 6;
        let data = clustered(300, dim, 5, 0.2, 11);
        let flat = FlatIndex::build(&data, dim);
        let ivf = IvfIndex::build(
            &data,
            dim,
            &IvfConfig {
                nlist: 10,
                nprobe: 10,
                ..Default::default()
            },
        );
        for q in [0usize, 17, 123] {
            let query = data[q * dim..(q + 1) * dim].to_vec();
            let exact: Vec<usize> = flat.search(&query, 15).iter().map(|&(id, _)| id).collect();
            let got: Vec<usize> = ivf
                .search_nprobe(&query, 15, 10)
                .0
                .iter()
                .map(|&(id, _)| id)
                .collect();
            assert_eq!(got, exact, "query {q}");
        }
    }

    #[test]
    fn nlist_clamps_to_collection_size() {
        let data = clustered(5, 3, 2, 0.1, 1);
        let ivf = IvfIndex::build(
            &data,
            3,
            &IvfConfig {
                nlist: 64,
                ..Default::default()
            },
        );
        assert_eq!(ivf.nlist(), 5);
        assert_eq!(ivf.len(), 5);
        // Every id lands in exactly one list.
        let mut all: Vec<u32> = ivf.lists.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn persistence_roundtrip() {
        let data = clustered(100, 4, 4, 0.1, 9);
        let ivf = IvfIndex::build(
            &data,
            4,
            &IvfConfig {
                nlist: 8,
                ..Default::default()
            },
        );
        let back: IvfIndex = crate::from_json(&crate::to_json(&ivf)).unwrap();
        assert_eq!(back, ivf);
        let q = &data[0..4];
        assert_eq!(back.search(q, 5), ivf.search(q, 5));
    }

    #[test]
    fn set_nprobe_changes_default_search_work() {
        let data = clustered(400, 8, 8, 0.1, 5);
        let mut ivf = IvfIndex::build(
            &data,
            8,
            &IvfConfig {
                nlist: 16,
                nprobe: 2,
                ..Default::default()
            },
        );
        let q = data[0..8].to_vec();
        let (_, low) = ivf.search_with_stats(&q, 10);
        ivf.set_nprobe(12);
        let (_, high) = ivf.search_with_stats(&q, 10);
        assert!(high.candidates > low.candidates);
        assert_eq!(low.buckets_probed, 2);
        assert_eq!(high.buckets_probed, 12);
    }
}
