//! Exact parallel scan with a bounded top-k heap.
//!
//! The replacement for the seed's sort-everything path: instead of
//! materializing and sorting all `N` distances, each worker keeps the best
//! `k` seen so far in a bounded max-heap (`O(N log k)`), over a contiguous
//! row-major matrix so the scan is one linear pass with no per-vector
//! pointer chasing.

use crate::{d2, AnnIndex, Neighbor, SearchStats, TopK};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Exact Euclidean nearest-neighbor search.
///
/// The indexed matrix is held behind an [`Arc`]: building from a shared
/// handle ([`FlatIndex::from_shared`]) costs no copy at all, so a database
/// and any number of indexes over it share one feature allocation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlatIndex {
    data: Arc<Vec<f64>>,
    dim: usize,
}

/// One-shot exact top-k over borrowed row-major data — the bounded-heap
/// scan without building (and copying into) an index. `lrf-cbir`'s
/// `top_k_euclidean` runs on this.
///
/// # Panics
/// Panics if `dim == 0`, `data.len()` is not a multiple of `dim`, or the
/// query dimension mismatches.
pub fn exact_top_k(data: &[f64], dim: usize, query: &[f64], k: usize) -> Vec<Neighbor> {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    let n = data.len() / dim;
    let mut top = TopK::new(k.min(n));
    for (id, row) in data.chunks_exact(dim).enumerate() {
        let dist = d2(query, row);
        top.push(id, dist);
    }
    top.into_sorted()
}

/// Below this collection size the serial scan wins (thread spawn costs
/// more than the scan itself).
const PARALLEL_THRESHOLD: usize = 8192;

impl FlatIndex {
    /// Indexes `n = data.len() / dim` vectors from a row-major matrix
    /// (copies the data; prefer [`Self::from_shared`] when the caller
    /// already holds the matrix behind an `Arc`).
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn build(data: &[f64], dim: usize) -> Self {
        Self::from_shared(Arc::new(data.to_vec()), dim)
    }

    /// Indexes a shared row-major matrix **without copying it** — the
    /// zero-copy path `lrf-cbir` uses to put an index over the database's
    /// own feature allocation.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_shared(data: Arc<Vec<f64>>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
        Self { data, dim }
    }

    /// The indexed matrix (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// The shared handle to the indexed matrix.
    pub fn shared_data(&self) -> Arc<Vec<f64>> {
        Arc::clone(&self.data)
    }

    /// One indexed vector.
    pub fn vector(&self, id: usize) -> &[f64] {
        &self.data[id * self.dim..(id + 1) * self.dim]
    }

    /// Serial scan over a contiguous id range, reusing a collector.
    fn scan_range(&self, query: &[f64], start: usize, end: usize, top: &mut TopK) {
        let dim = self.dim;
        for (offset, row) in self.data[start * dim..end * dim]
            .chunks_exact(dim)
            .enumerate()
        {
            let id = start + offset;
            let dist = d2(query, row);
            top.push(id, dist);
        }
    }
}

impl AnnIndex for FlatIndex {
    fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &'static str {
        "flat"
    }

    fn search_with_stats(&self, query: &[f64], k: usize) -> (Vec<Neighbor>, SearchStats) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let n = self.len();
        let k = k.min(n);
        let stats = SearchStats {
            distance_evals: n,
            candidates: n,
            buckets_probed: 1,
        };
        if k == 0 {
            return (Vec::new(), stats);
        }

        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        if n < PARALLEL_THRESHOLD || threads <= 1 {
            let mut top = TopK::new(k);
            self.scan_range(query, 0, n, &mut top);
            return (top.into_sorted(), stats);
        }

        // Chunk boundaries depend only on n and the thread count; the merge
        // re-sorts by (d², id), so results are identical to the serial scan
        // regardless of scheduling.
        let chunk = n.div_ceil(threads);
        let partials: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|start| {
                    let end = (start + chunk).min(n);
                    scope.spawn(move || {
                        let mut top = TopK::new(k);
                        self.scan_range(query, start, end, &mut top);
                        top.into_sorted_d2()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .collect()
        });

        let mut merged = TopK::new(k);
        for partial in partials {
            for (id, dist) in partial {
                merged.push(id, dist);
            }
        }
        (merged.into_sorted(), stats)
    }

    /// Parallelizes across queries (one serial scan each) — better cache
    /// behavior than splitting every query across cores.
    fn batch_search(&self, queries: &[Vec<f64>], k: usize) -> Vec<Vec<Neighbor>> {
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        if queries.len() < 2 || threads <= 1 {
            return queries.iter().map(|q| self.search(q, k)).collect();
        }
        let n = self.len();
        let k = k.min(n);
        let chunk = queries.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .map(|q| {
                                assert_eq!(q.len(), self.dim, "query dimension mismatch");
                                let mut top = TopK::new(k);
                                self.scan_range(q, 0, n, &mut top);
                                top.into_sorted()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker panicked"))
                .collect()
        })
    }
}

/// One contiguous id-range slice of a flat index — the per-worker unit of
/// a sharded scatter-gather serving plane. Shards share the **same**
/// `Arc`'d matrix as the unsharded [`FlatIndex`] (no rows are copied) and
/// emit **global** ids, so a coordinator can merge shard results and ids
/// remain database ids throughout.
///
/// Results are exposed as *squared* distances ([`FlatShard::search_d2`]):
/// the coordinator must merge on `(d², id)` and take square roots only
/// after the merge, because distinct `d²` values can round to equal
/// `sqrt`s and silently reorder ties relative to the single-index scan
/// (which merges its own parallel partials on `d²` for the same reason).
#[derive(Clone, Debug)]
pub struct FlatShard {
    data: Arc<Vec<f64>>,
    dim: usize,
    start: usize,
    end: usize,
}

impl FlatShard {
    /// A shard over global ids `[start, end)` of a shared row-major
    /// matrix, without copying any rows.
    ///
    /// # Panics
    /// Panics if `dim == 0`, the matrix is ragged, or the range is empty
    /// or out of bounds.
    pub fn from_shared(data: Arc<Vec<f64>>, dim: usize, start: usize, end: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
        let n = data.len() / dim;
        assert!(
            start < end && end <= n,
            "invalid shard range {start}..{end} over {n}"
        );
        Self {
            data,
            dim,
            start,
            end,
        }
    }

    /// Splits `n = data.len() / dim` vectors into `n_shards` contiguous,
    /// near-equal ranges covering every id exactly once. Shard count is
    /// clamped to `n` so no shard is ever empty.
    pub fn split_shared(data: Arc<Vec<f64>>, dim: usize, n_shards: usize) -> Vec<Self> {
        assert!(n_shards > 0, "shard count must be positive");
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "data length must be a multiple of dim");
        let n = data.len() / dim;
        let n_shards = n_shards.min(n).max(1);
        let chunk = n.div_ceil(n_shards);
        (0..n)
            .step_by(chunk)
            .map(|start| Self::from_shared(Arc::clone(&data), dim, start, (start + chunk).min(n)))
            .collect()
    }

    /// First global id covered by this shard (inclusive).
    pub fn start(&self) -> usize {
        self.start
    }

    /// One-past-last global id covered by this shard.
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of vectors in the shard.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the shard covers no vectors (unreachable via the
    /// constructors, which reject empty ranges).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether `id` (global) falls in this shard's range.
    pub fn contains(&self, id: usize) -> bool {
        (self.start..self.end).contains(&id)
    }

    /// The shard's `k` nearest vectors to `query` as ascending
    /// `(global id, d²)` pairs, plus the scan's work counters — the
    /// scatter half of a sharded search. Exactly the serial bounded-heap
    /// scan [`FlatIndex`] runs, restricted to the shard's range.
    ///
    /// # Panics
    /// Panics if `query.len() != self.dim()`.
    pub fn search_d2(&self, query: &[f64], k: usize) -> (Vec<(usize, f64)>, SearchStats) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let stats = SearchStats {
            distance_evals: self.len(),
            candidates: self.len(),
            buckets_probed: 1,
        };
        let mut top = TopK::new(k.min(self.len()));
        let dim = self.dim;
        for (offset, row) in self.data[self.start * dim..self.end * dim]
            .chunks_exact(dim)
            .enumerate()
        {
            top.push(self.start + offset, d2(query, row));
        }
        (top.into_sorted_d2(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dim).map(|_| rng.gen_range(-1.0f64..1.0)).collect()
    }

    /// Reference implementation: sort the whole distance list.
    fn brute_force(data: &[f64], dim: usize, query: &[f64], k: usize) -> Vec<Neighbor> {
        let mut scored: Vec<(usize, f64)> = data
            .chunks_exact(dim)
            .enumerate()
            .map(|(i, row)| (i, d2(query, row)))
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored.into_iter().map(|(i, d)| (i, d.sqrt())).collect()
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        for seed in 0..5 {
            let dim = 8;
            let data = random_matrix(200, dim, seed);
            let index = FlatIndex::build(&data, dim);
            let query = random_matrix(1, dim, seed ^ 0xabc);
            let got = index.search(&query, 10);
            let want = brute_force(&data, dim, &query, 10);
            assert_eq!(
                got.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                want.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                "seed {seed}"
            );
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_path_matches_serial_ordering() {
        // Above PARALLEL_THRESHOLD the scan forks; results must be
        // bit-identical to brute force anyway.
        let dim = 4;
        let n = PARALLEL_THRESHOLD + 513;
        let data = random_matrix(n, dim, 42);
        let index = FlatIndex::build(&data, dim);
        let query = random_matrix(1, dim, 7);
        let got = index.search(&query, 25);
        let want = brute_force(&data, dim, &query, 25);
        assert_eq!(got.len(), 25);
        assert_eq!(
            got.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            want.iter().map(|&(id, _)| id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplicate_rows_tie_break_by_id() {
        let data = vec![1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let index = FlatIndex::build(&data, 2);
        let got = index.search(&[1.0, 1.0], 4);
        assert_eq!(
            got.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![0, 2, 1, 3]
        );
    }

    #[test]
    fn k_clamps_to_len_and_zero_works() {
        let data = random_matrix(5, 3, 1);
        let index = FlatIndex::build(&data, 3);
        assert_eq!(index.search(&[0.0; 3], 100).len(), 5);
        assert!(index.search(&[0.0; 3], 0).is_empty());
    }

    #[test]
    fn stats_count_full_scan() {
        let data = random_matrix(50, 2, 3);
        let index = FlatIndex::build(&data, 2);
        let (_, stats) = index.search_with_stats(&[0.0, 0.0], 5);
        assert_eq!(stats.distance_evals, 50);
        assert_eq!(stats.candidates, 50);
    }

    #[test]
    fn batch_matches_individual_searches() {
        let dim = 6;
        let data = random_matrix(300, dim, 9);
        let index = FlatIndex::build(&data, dim);
        let queries: Vec<Vec<f64>> = (0..17).map(|i| random_matrix(1, dim, 100 + i)).collect();
        let batch = index.batch_search(&queries, 8);
        for (q, got) in queries.iter().zip(&batch) {
            assert_eq!(got, &index.search(q, 8));
        }
    }

    #[test]
    fn from_shared_does_not_copy() {
        let data = Arc::new(random_matrix(30, 4, 2));
        let index = FlatIndex::from_shared(Arc::clone(&data), 4);
        assert!(Arc::ptr_eq(&data, &index.shared_data()));
        // Clones of the index still share the one allocation.
        assert!(Arc::ptr_eq(&data, &index.clone().shared_data()));
        // And the search results equal the copying constructor's.
        let copied = FlatIndex::build(&data, 4);
        assert_eq!(index.search(&data[0..4], 5), copied.search(&data[0..4], 5));
    }

    #[test]
    fn persistence_roundtrip() {
        let data = random_matrix(20, 4, 11);
        let index = FlatIndex::build(&data, 4);
        let bytes = crate::to_json(&index);
        let back: FlatIndex = crate::from_json(&bytes).unwrap();
        assert_eq!(back, index);
        assert_eq!(back.search(&data[0..4], 3), index.search(&data[0..4], 3));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_query_dim_rejected() {
        let index = FlatIndex::build(&[0.0, 0.0], 2);
        let _ = index.search(&[0.0], 1);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn ragged_data_rejected() {
        let _ = FlatIndex::build(&[0.0, 0.0, 0.0], 2);
    }

    #[test]
    fn shards_cover_every_id_exactly_once() {
        let data = Arc::new(random_matrix(23, 3, 5));
        for n_shards in [1, 2, 5, 23, 100] {
            let shards = FlatShard::split_shared(Arc::clone(&data), 3, n_shards);
            assert!(shards.len() <= n_shards);
            let mut covered = Vec::new();
            for s in &shards {
                assert!(!s.is_empty());
                assert!(Arc::ptr_eq(&data, &s.data), "shards must not copy rows");
                covered.extend(s.start()..s.end());
            }
            assert_eq!(covered, (0..23).collect::<Vec<_>>(), "n_shards={n_shards}");
        }
    }

    #[test]
    fn shard_scan_equals_restricted_full_scan() {
        let dim = 4;
        let data = Arc::new(random_matrix(60, dim, 8));
        let query = random_matrix(1, dim, 99);
        let shard = FlatShard::from_shared(Arc::clone(&data), dim, 20, 45);
        let (got, stats) = shard.search_d2(&query, 10);
        assert_eq!(stats.distance_evals, 25);
        // Reference: brute force over rows 20..45 with global ids.
        let mut want: Vec<(usize, f64)> = (20..45)
            .map(|id| (id, d2(&query, &data[id * dim..(id + 1) * dim])))
            .collect();
        want.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        want.truncate(10);
        assert_eq!(got, want);
        assert!(shard.contains(20) && shard.contains(44) && !shard.contains(45));
    }
}
