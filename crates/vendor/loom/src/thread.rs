//! Instrumented thread spawning.
//!
//! Outside a model run [`spawn`] is `std::thread::spawn`. Inside one, the
//! spawned closure becomes a new **model thread**: it runs under the
//! scheduler's baton, its panics are reported as violations, and
//! [`JoinHandle::join`] is a blocking schedule point like any lock.

use crate::rt;
use std::any::Any;
use std::panic;
use std::sync::{Arc as StdArc, Mutex as StdMutex};

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    imp: Imp<T>,
}

enum Imp<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        target: usize,
        slot: StdArc<StdMutex<Option<T>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// # Errors
    /// Returns `Err` if the thread panicked. In a model run the panic
    /// payload itself is reported as the violation; the `Err` carries a
    /// placeholder message.
    ///
    /// # Panics
    /// In a model run, panics if joined from a thread outside the model.
    pub fn join(self) -> std::thread::Result<T> {
        match self.imp {
            Imp::Std(h) => h.join(),
            Imp::Model { target, slot } => {
                let ctx = rt::current()
                    .expect("a model thread's JoinHandle must be joined from a model thread");
                ctx.exec.join_wait(ctx.me, target);
                match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(v) => Ok(v),
                    // The target panicked (already recorded as the run's
                    // violation) so it never stored a value.
                    None => Err(Box::new("the joined model thread panicked")
                        as Box<dyn Any + Send + 'static>),
                }
            }
        }
    }
}

/// Spawns a thread. Inside a model run the thread is scheduled by the
/// checker; outside, this is exactly `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle {
            imp: Imp::Std(std::thread::spawn(f)),
        },
        Some(ctx) => {
            let slot: StdArc<StdMutex<Option<T>>> = StdArc::new(StdMutex::new(None));
            let slot2 = StdArc::clone(&slot);
            let target = rt::spawn_model_thread(&ctx.exec, move || {
                // On panic, leave the slot empty and re-raise so
                // `spawn_model_thread`'s wrapper reports the violation.
                match panic::catch_unwind(panic::AssertUnwindSafe(f)) {
                    Ok(v) => *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v),
                    Err(payload) => panic::resume_unwind(payload),
                }
            });
            // The spawned thread is schedulable from here on.
            ctx.exec.switch_point(ctx.me);
            JoinHandle {
                imp: Imp::Model { target, slot },
            }
        }
    }
}

/// A pure schedule point: in a model run, offers the scheduler a switch;
/// outside one, `std::thread::yield_now`.
pub fn yield_now() {
    match rt::current() {
        Some(ctx) => ctx.exec.switch_point(ctx.me),
        None => std::thread::yield_now(),
    }
}
