//! The instrumented atomically-reference-counted pointer.

use crate::rt;
use std::mem::ManuallyDrop;
use std::sync::Arc as StdArc;

/// An `std::sync::Arc` whose clones and drops are schedule points under
/// the model checker — so the checker can interleave, say, a reader
/// dropping its snapshot against a writer's `Arc::get_mut` uniqueness
/// probe.
///
/// The associated-function API mirrors `std` (`Arc::clone(&x)`,
/// `Arc::get_mut`, `Arc::try_unwrap`, `Arc::ptr_eq`, ...).
pub struct Arc<T: ?Sized> {
    /// `ManuallyDrop` so `try_unwrap` can move the inner pointer out of a
    /// type that also implements `Drop`.
    inner: ManuallyDrop<StdArc<T>>,
}

fn schedule_point() {
    if let Some(ctx) = rt::current() {
        ctx.exec.switch_point(ctx.me);
    }
}

impl<T> Arc<T> {
    /// Wraps `value` in a new reference-counted allocation.
    pub fn new(value: T) -> Self {
        Arc {
            inner: ManuallyDrop::new(StdArc::new(value)),
        }
    }

    /// Returns the inner value if `this` holds the only reference,
    /// otherwise gives `this` back.
    ///
    /// # Errors
    /// Returns `Err(this)` when other references exist.
    pub fn try_unwrap(mut this: Self) -> Result<T, Self> {
        schedule_point();
        let inner = unsafe { ManuallyDrop::take(&mut this.inner) };
        std::mem::forget(this);
        StdArc::try_unwrap(inner).map_err(|a| Arc {
            inner: ManuallyDrop::new(a),
        })
    }
}

impl<T: ?Sized> Arc<T> {
    /// Mutable access to the value when `this` is the only reference.
    pub fn get_mut(this: &mut Self) -> Option<&mut T> {
        schedule_point();
        StdArc::get_mut(&mut this.inner)
    }

    /// Whether the two point at the same allocation.
    pub fn ptr_eq(this: &Self, other: &Self) -> bool {
        StdArc::ptr_eq(&this.inner, &other.inner)
    }

    /// The raw pointer to the value.
    pub fn as_ptr(this: &Self) -> *const T {
        StdArc::as_ptr(&this.inner)
    }

    /// The number of strong references.
    pub fn strong_count(this: &Self) -> usize {
        StdArc::strong_count(&this.inner)
    }
}

impl<T: ?Sized> Clone for Arc<T> {
    fn clone(&self) -> Self {
        schedule_point();
        Arc {
            inner: ManuallyDrop::new(StdArc::clone(&self.inner)),
        }
    }
}

impl<T: ?Sized> Drop for Arc<T> {
    fn drop(&mut self) {
        schedule_point();
        unsafe { ManuallyDrop::drop(&mut self.inner) };
    }
}

impl<T: ?Sized> std::ops::Deref for Arc<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> AsRef<T> for Arc<T> {
    fn as_ref(&self) -> &T {
        self
    }
}

impl<T: Default> Default for Arc<T> {
    fn default() -> Self {
        Arc::new(T::default())
    }
}

impl<T> From<T> for Arc<T> {
    fn from(value: T) -> Self {
        Arc::new(value)
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Arc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: std::fmt::Display + ?Sized> std::fmt::Display for Arc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: PartialEq + ?Sized> PartialEq for Arc<T> {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl<T: Eq + ?Sized> Eq for Arc<T> {}
