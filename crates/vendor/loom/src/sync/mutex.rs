//! The instrumented mutex.

use crate::rt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{LockResult, Mutex as StdMutex, PoisonError, TryLockError, TryLockResult};

/// A mutual-exclusion lock with the `std::sync::Mutex` API that becomes a
/// schedule point under the model checker.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    /// Lazily-claimed checker resource id (0 = none yet).
    id: AtomicUsize,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(t: T) -> Self {
        Mutex {
            id: AtomicUsize::new(0),
            inner: StdMutex::new(t),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    ///
    /// # Errors
    /// Returns the data wrapped in a [`PoisonError`] if the mutex was
    /// poisoned.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn resource(&self) -> usize {
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = rt::alloc_resource();
        match self
            .id
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }

    /// Acquires the mutex, blocking (in a model run: descheduling) until
    /// it is available.
    ///
    /// # Errors
    /// Returns the guard wrapped in a [`PoisonError`] if another thread
    /// panicked while holding the lock.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let Some(ctx) = rt::current() else {
            return match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: Some(g),
                    release: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    release: None,
                })),
            };
        };
        let res = self.resource();
        loop {
            ctx.exec.switch_point(ctx.me);
            match self.inner.try_lock() {
                Ok(g) => {
                    return Ok(MutexGuard {
                        inner: Some(g),
                        release: Some((ctx, res)),
                    })
                }
                Err(TryLockError::Poisoned(p)) => {
                    return Err(PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        release: Some((ctx, res)),
                    }))
                }
                Err(TryLockError::WouldBlock) => ctx.exec.block_on(ctx.me, res),
            }
        }
    }

    /// Attempts to acquire the mutex without blocking.
    ///
    /// # Errors
    /// [`TryLockError::WouldBlock`] if the lock is held,
    /// [`TryLockError::Poisoned`] if it is poisoned.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        let ctx = rt::current();
        if let Some(ctx) = &ctx {
            ctx.exec.switch_point(ctx.me);
        }
        let release = ctx.map(|c| {
            let res = self.resource();
            (c, res)
        });
        match self.inner.try_lock() {
            Ok(g) => Ok(MutexGuard {
                inner: Some(g),
                release,
            }),
            Err(TryLockError::Poisoned(p)) => {
                Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    release,
                })))
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
        }
    }

    /// Whether the mutex is poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    /// Mutable access without locking (`&mut self` proves exclusivity).
    ///
    /// # Errors
    /// Returns the reference wrapped in a [`PoisonError`] if poisoned.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(t: T) -> Self {
        Mutex::new(t)
    }
}

/// RAII guard for [`Mutex`]; releasing it is a checker wake-up event.
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Option` so `Drop` can release the std guard *before* notifying
    /// the scheduler.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    release: Option<(rt::Ctx, usize)>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken only in Drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken only in Drop")
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((ctx, res)) = self.release.take() {
            ctx.exec.release(res);
        }
    }
}
