//! Instrumented atomic integers.
//!
//! Each operation is a schedule point under the model checker and then
//! delegates to the `std` atomic with the caller's ordering. Because the
//! scheduler runs one thread at a time, every atomic access is linearized
//! at its schedule point: the checker explores all interleavings of
//! sequentially-consistent executions and does **not** model weaker
//! memory orderings (the same simplification loom's default mode makes).

pub use std::sync::atomic::Ordering;

use crate::rt;

fn schedule_point() {
    if let Some(ctx) = rt::current() {
        ctx.exec.switch_point(ctx.me);
    }
}

macro_rules! atomic_int {
    ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
        $(#[$doc])*
        #[derive(Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $ty) -> Self {
                Self {
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            /// Loads the value.
            pub fn load(&self, order: Ordering) -> $ty {
                schedule_point();
                self.inner.load(order)
            }

            /// Stores a value.
            pub fn store(&self, val: $ty, order: Ordering) {
                schedule_point();
                self.inner.store(val, order)
            }

            /// Swaps in a value, returning the previous one.
            pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                schedule_point();
                self.inner.swap(val, order)
            }

            /// Stores `new` if the current value is `current`.
            ///
            /// # Errors
            /// Returns the actual value when it was not `current`.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                schedule_point();
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// The value, without atomicity (`&mut self` proves
            /// exclusivity).
            pub fn get_mut(&mut self) -> &mut $ty {
                self.inner.get_mut()
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }

        impl From<$ty> for $name {
            fn from(v: $ty) -> Self {
                Self::new(v)
            }
        }
    };
}

macro_rules! atomic_arith {
    ($name:ident, $ty:ty) => {
        impl $name {
            /// Adds to the value, returning the previous one.
            pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                schedule_point();
                self.inner.fetch_add(val, order)
            }

            /// Subtracts from the value, returning the previous one.
            pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                schedule_point();
                self.inner.fetch_sub(val, order)
            }
        }
    };
}

atomic_int!(
    /// An instrumented `usize` atomic.
    AtomicUsize,
    AtomicUsize,
    usize
);
atomic_int!(
    /// An instrumented `u64` atomic.
    AtomicU64,
    AtomicU64,
    u64
);
atomic_int!(
    /// An instrumented boolean atomic.
    AtomicBool,
    AtomicBool,
    bool
);
atomic_arith!(AtomicUsize, usize);
atomic_arith!(AtomicU64, u64);
