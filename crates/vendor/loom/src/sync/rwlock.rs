//! The instrumented reader-writer lock.

use crate::rt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{LockResult, PoisonError, RwLock as StdRwLock, TryLockError, TryLockResult};

/// A reader-writer lock with the `std::sync::RwLock` API that becomes a
/// schedule point under the model checker.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    id: AtomicUsize,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(t: T) -> Self {
        RwLock {
            id: AtomicUsize::new(0),
            inner: StdRwLock::new(t),
        }
    }

    /// Consumes the lock, returning the underlying data.
    ///
    /// # Errors
    /// Returns the data wrapped in a [`PoisonError`] if poisoned.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn resource(&self) -> usize {
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = rt::alloc_resource();
        match self
            .id
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }

    /// Acquires shared read access, blocking (in a model run:
    /// descheduling) while a writer holds the lock.
    ///
    /// # Errors
    /// Returns the guard wrapped in a [`PoisonError`] if poisoned.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let Some(ctx) = rt::current() else {
            return match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    inner: Some(g),
                    release: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    inner: Some(p.into_inner()),
                    release: None,
                })),
            };
        };
        let res = self.resource();
        loop {
            ctx.exec.switch_point(ctx.me);
            match self.inner.try_read() {
                Ok(g) => {
                    return Ok(RwLockReadGuard {
                        inner: Some(g),
                        release: Some((ctx, res)),
                    })
                }
                Err(TryLockError::Poisoned(p)) => {
                    return Err(PoisonError::new(RwLockReadGuard {
                        inner: Some(p.into_inner()),
                        release: Some((ctx, res)),
                    }))
                }
                Err(TryLockError::WouldBlock) => ctx.exec.block_on(ctx.me, res),
            }
        }
    }

    /// Acquires exclusive write access, blocking (in a model run:
    /// descheduling) while any reader or writer holds the lock.
    ///
    /// # Errors
    /// Returns the guard wrapped in a [`PoisonError`] if poisoned.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let Some(ctx) = rt::current() else {
            return match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    inner: Some(g),
                    release: None,
                }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    inner: Some(p.into_inner()),
                    release: None,
                })),
            };
        };
        let res = self.resource();
        loop {
            ctx.exec.switch_point(ctx.me);
            match self.inner.try_write() {
                Ok(g) => {
                    return Ok(RwLockWriteGuard {
                        inner: Some(g),
                        release: Some((ctx, res)),
                    })
                }
                Err(TryLockError::Poisoned(p)) => {
                    return Err(PoisonError::new(RwLockWriteGuard {
                        inner: Some(p.into_inner()),
                        release: Some((ctx, res)),
                    }))
                }
                Err(TryLockError::WouldBlock) => ctx.exec.block_on(ctx.me, res),
            }
        }
    }

    /// Attempts shared read access without blocking.
    ///
    /// # Errors
    /// [`TryLockError::WouldBlock`] when a writer holds the lock,
    /// [`TryLockError::Poisoned`] when poisoned.
    pub fn try_read(&self) -> TryLockResult<RwLockReadGuard<'_, T>> {
        let ctx = rt::current();
        if let Some(ctx) = &ctx {
            ctx.exec.switch_point(ctx.me);
        }
        let release = ctx.map(|c| {
            let res = self.resource();
            (c, res)
        });
        match self.inner.try_read() {
            Ok(g) => Ok(RwLockReadGuard {
                inner: Some(g),
                release,
            }),
            Err(TryLockError::Poisoned(p)) => {
                Err(TryLockError::Poisoned(PoisonError::new(RwLockReadGuard {
                    inner: Some(p.into_inner()),
                    release,
                })))
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
        }
    }

    /// Whether the lock is poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    /// Mutable access without locking (`&mut self` proves exclusivity).
    ///
    /// # Errors
    /// Returns the reference wrapped in a [`PoisonError`] if poisoned.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(t: T) -> Self {
        RwLock::new(t)
    }
}

macro_rules! rw_guard {
    ($name:ident, $std:ident, $(#[$doc:meta])*) => {
        $(#[$doc])*
        pub struct $name<'a, T: ?Sized> {
            inner: Option<std::sync::$std<'a, T>>,
            release: Option<(rt::Ctx, usize)>,
        }

        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                self.inner.as_ref().expect("guard taken only in Drop")
            }
        }

        impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for $name<'_, T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                (**self).fmt(f)
            }
        }

        impl<T: ?Sized> Drop for $name<'_, T> {
            fn drop(&mut self) {
                drop(self.inner.take());
                if let Some((ctx, res)) = self.release.take() {
                    ctx.exec.release(res);
                }
            }
        }
    };
}

rw_guard!(
    RwLockReadGuard,
    RwLockReadGuard,
    /// Shared-access RAII guard for [`RwLock`]; releasing it is a checker
    /// wake-up event.
);
rw_guard!(
    RwLockWriteGuard,
    RwLockWriteGuard,
    /// Exclusive-access RAII guard for [`RwLock`]; releasing it is a
    /// checker wake-up event.
);

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken only in Drop")
    }
}
