//! The deterministic scheduler runtime behind the instrumented shims.
//!
//! ## Execution model
//!
//! A model run executes the program many times. In each **execution**,
//! every model thread runs on its own OS thread but the scheduler admits
//! **exactly one** of them at a time (a baton passed through a condvar), so
//! the program is fully sequentialized: a thread runs uninterrupted from
//! one *schedule point* to the next. Schedule points sit in front of every
//! instrumented operation (lock acquire, atomic access, `Arc` clone/drop,
//! spawn, join, yield), which is exactly the granularity at which distinct
//! interleavings of a data-race-free program can differ.
//!
//! At a schedule point with more than one runnable thread the scheduler
//! faces a **choice**. The driver explores the tree of choices:
//!
//! * **Exhaustive DFS with a preemption bound** — the default. Choices
//!   that switch away from a thread that could have continued count as
//!   preemptions; executions with more than
//!   [`Builder::preemption_bound`] of them are pruned (the CHESS result:
//!   most real concurrency bugs need very few preemptions). Within the
//!   bound the search is exhaustive, so a passing report with
//!   `complete == true` is a proof over that schedule space.
//! * **Seeded-random fallback** — if the DFS has not finished after
//!   [`Builder::max_dfs_executions`] executions, the driver switches to
//!   uniformly random scheduling (deterministic per
//!   [`Builder::seed`]) for another [`Builder::random_executions`]
//!   executions and reports `complete == false`.
//!
//! A violation — an assertion failure or panic on any model thread, a
//! deadlock (every thread blocked), or nondeterminism (the program made
//! different choices on replay) — aborts the exploration and is returned
//! with the schedule (the sequence of choice indices) that produced it.
//!
//! ## Blocking, deadlock, teardown
//!
//! A thread that would block (contended lock, join on a live thread)
//! parks itself and hands the baton over; releasing a resource marks its
//! waiters runnable again. If a thread must block and no thread is
//! runnable, the execution has deadlocked and the scheduler reports it.
//! After any violation the execution enters **free-run** teardown: the
//! baton is abandoned, every parked thread wakes, and each unwinds at its
//! next schedule point via a sentinel panic ([`StopExecution`]) so the
//! driver can reap all OS threads and report.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc as StdArc, Condvar, Mutex as StdMutex, Once};

/// Sentinel panic payload used to unwind model threads during teardown.
/// Never reported as a violation.
pub(crate) struct StopExecution;

/// Process-wide count of model runs in flight: the fast path of every shim
/// is a single relaxed load of this counter, so outside a model run the
/// instrumented types cost one predictable branch over bare `std::sync`.
static MODELS_ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide resource-id allocator (locks lazily claim an id on first
/// model-mode use; ids only need to be unique, not dense).
static NEXT_RESOURCE: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// A model thread's handle to its execution: shared scheduler state plus
/// this thread's index.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: StdArc<Execution>,
    pub(crate) me: usize,
}

/// The calling thread's model context, or `None` when it is an ordinary
/// (uninstrumented) thread — the dual-mode dispatch every shim starts with.
#[inline]
pub(crate) fn current() -> Option<Ctx> {
    if MODELS_ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CTX.with(|c| c.borrow().clone())
}

fn install(ctx: Ctx) {
    CTX.with(|c| *c.borrow_mut() = Some(ctx));
}

fn uninstall() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Allocates a fresh resource id for a lock.
pub(crate) fn alloc_resource() -> usize {
    NEXT_RESOURCE.fetch_add(1, Ordering::Relaxed)
}

/// What a registered thread is currently doing, from the scheduler's view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    /// Can be scheduled.
    Runnable,
    /// Parked until the resource with this id is released.
    Blocked(usize),
    /// Parked until the thread with this index finishes.
    Joining(usize),
    /// Returned (or unwound); never scheduled again.
    Finished,
}

/// One recorded scheduling decision: at a point where `options` (more than
/// one thread) were schedulable while `current` held the baton, the
/// `pick`-th option was chosen. The DFS backtracks by bumping `pick`.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    current: usize,
    options: Vec<usize>,
    pick: usize,
}

/// How the current execution chooses at branch points.
enum Explore {
    /// Replay `trace[..len]`, then extend depth-first (always option 0).
    Dfs,
    /// Choose uniformly at random; the generator persists across
    /// executions so each one walks a different schedule.
    Random(Box<StdRng>),
}

struct Schedule {
    trace: Vec<Choice>,
    /// Next replay position within `trace` (DFS mode).
    pos: usize,
    mode: Explore,
    preemption_bound: Option<usize>,
    preemptions: usize,
}

struct ExecState {
    threads: Vec<Run>,
    handles: Vec<Option<std::thread::JoinHandle<()>>>,
    /// Index of the thread holding the baton.
    active: usize,
    /// Set on violation: scheduling is abandoned and every thread unwinds
    /// at its next schedule point.
    free_run: bool,
    failure: Option<String>,
    finished: usize,
    schedule: Schedule,
}

/// Shared state of one execution (one complete run of the model closure).
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    cond: Condvar,
}

impl Execution {
    fn new(trace: Vec<Choice>, mode: Explore, preemption_bound: Option<usize>) -> Self {
        Execution {
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                handles: Vec::new(),
                active: 0,
                free_run: false,
                failure: None,
                finished: 0,
                schedule: Schedule {
                    trace,
                    pos: 0,
                    mode,
                    preemption_bound,
                    preemptions: 0,
                },
            }),
            cond: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        // The scheduler's own mutex is never held across a wait point by a
        // running thread, so poisoning can only come from a panic inside
        // the scheduler itself; recovering keeps teardown deliverable.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a new model thread, returning its index. The thread is
    /// immediately runnable but the baton stays with the spawner.
    pub(crate) fn register(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(Run::Runnable);
        st.handles.push(None);
        st.threads.len() - 1
    }

    pub(crate) fn store_handle(&self, idx: usize, h: std::thread::JoinHandle<()>) {
        self.lock().handles[idx] = Some(h);
    }

    /// Parks the calling OS thread until it is scheduled for the first
    /// time (or teardown begins).
    fn wait_for_baton(&self, me: usize) {
        let mut st = self.lock();
        while !(st.active == me || st.free_run) {
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Records a violation, switches to free-run teardown and wakes
    /// everyone. Only the first violation is kept.
    fn fail(&self, st: &mut ExecState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.free_run = true;
        self.cond.notify_all();
    }

    /// Unwinds the calling thread with the teardown sentinel — unless it
    /// is already unwinding (a sentinel panic inside a `Drop` that runs
    /// during another panic would abort the process).
    fn stop(&self) -> ! {
        debug_assert!(!std::thread::panicking());
        panic::panic_any(StopExecution);
    }

    /// Picks the next thread to run. `me_runnable` says whether the
    /// caller could continue (false at forced switches: block/join/
    /// finish). Returns `None` when no thread can run — a deadlock,
    /// which the caller reports. Records a [`Choice`] when more than one
    /// option existed.
    fn decide(&self, st: &mut ExecState, me: usize, me_runnable: bool) -> Option<usize> {
        let mut enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            return None;
        }
        // Deterministic option order: the current thread first (staying is
        // never a preemption), then the rest by index.
        if let Some(p) = enabled.iter().position(|&t| t == me) {
            enabled.remove(p);
            enabled.insert(0, me);
        }
        // Preemption bound: once spent, a thread that can continue must.
        let sched = &mut st.schedule;
        let options = if me_runnable
            && enabled.first() == Some(&me)
            && sched
                .preemption_bound
                .is_some_and(|b| sched.preemptions >= b)
        {
            vec![me]
        } else {
            enabled
        };
        let pick = if options.len() == 1 {
            0
        } else {
            match &mut sched.mode {
                Explore::Dfs => {
                    if sched.pos < sched.trace.len() {
                        let c = &sched.trace[sched.pos];
                        if c.options != options || c.current != me {
                            let msg = format!(
                                "nondeterministic execution: schedule replay diverged \
                                 (expected options {:?} at thread {}, found {:?} at \
                                 thread {me})",
                                c.options, c.current, options,
                            );
                            self.fail(st, msg);
                            return Some(me);
                        }
                        let p = c.pick;
                        sched.pos += 1;
                        p
                    } else {
                        sched.trace.push(Choice {
                            current: me,
                            options: options.clone(),
                            pick: 0,
                        });
                        sched.pos += 1;
                        0
                    }
                }
                Explore::Random(rng) => {
                    let p = rng.gen_range(0..options.len());
                    sched.trace.push(Choice {
                        current: me,
                        options: options.clone(),
                        pick: p,
                    });
                    p
                }
            }
        };
        let chosen = options[pick];
        if me_runnable && chosen != me {
            st.schedule.preemptions += 1;
        }
        Some(chosen)
    }

    /// Hands the baton to `next` and parks until this thread is scheduled
    /// again (predicate: runnable *and* active), or teardown begins.
    fn hand_over_and_park(&self, mut st: std::sync::MutexGuard<'_, ExecState>, me: usize) {
        loop {
            if st.free_run {
                drop(st);
                if self.lock().failure.is_some() && !std::thread::panicking() {
                    self.stop();
                }
                return;
            }
            if st.active == me && st.threads[me] == Run::Runnable {
                return;
            }
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A schedule point: the instrumented operation that follows runs
    /// atomically with respect to every other model thread.
    pub(crate) fn switch_point(&self, me: usize) {
        let mut st = self.lock();
        if st.free_run {
            let failed = st.failure.is_some();
            drop(st);
            if failed && !std::thread::panicking() {
                self.stop();
            }
            return;
        }
        match self.decide(&mut st, me, true) {
            Some(next) if next == me => {}
            Some(next) => {
                st.active = next;
                self.cond.notify_all();
                self.hand_over_and_park(st, me);
            }
            // `me` is runnable, so the enabled set cannot be empty.
            None => unreachable!("schedule point with no runnable thread"),
        }
    }

    /// Parks the calling thread until `resource` is released. The caller
    /// retries its acquisition when woken (wakeups are collective, not
    /// ownership transfers).
    pub(crate) fn block_on(&self, me: usize, resource: usize) {
        let mut st = self.lock();
        if st.free_run {
            let failed = st.failure.is_some();
            drop(st);
            if failed && !std::thread::panicking() {
                self.stop();
            }
            // Teardown: the holder is unwinding; spin-retry.
            std::thread::yield_now();
            return;
        }
        st.threads[me] = Run::Blocked(resource);
        match self.decide(&mut st, me, false) {
            Some(next) => {
                st.active = next;
                self.cond.notify_all();
                self.hand_over_and_park(st, me);
            }
            None => {
                self.fail(&mut st, "deadlock: every model thread is blocked".into());
                drop(st);
                self.stop();
            }
        }
    }

    /// Marks every thread blocked on `resource` runnable again. Called
    /// from guard drops — never a schedule point, and never panics, so it
    /// is unwind-safe.
    pub(crate) fn release(&self, resource: usize) {
        let mut st = self.lock();
        for r in st.threads.iter_mut() {
            if *r == Run::Blocked(resource) {
                *r = Run::Runnable;
            }
        }
        self.cond.notify_all();
    }

    /// Parks the calling thread until thread `target` finishes.
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        loop {
            let mut st = self.lock();
            if st.threads[target] == Run::Finished {
                return;
            }
            if st.free_run {
                let failed = st.failure.is_some();
                drop(st);
                if failed && !std::thread::panicking() {
                    self.stop();
                }
                std::thread::yield_now();
                continue;
            }
            st.threads[me] = Run::Joining(target);
            match self.decide(&mut st, me, false) {
                Some(next) => {
                    st.active = next;
                    self.cond.notify_all();
                    self.hand_over_and_park(st, me);
                }
                None => {
                    self.fail(&mut st, "deadlock: every model thread is blocked".into());
                    drop(st);
                    self.stop();
                }
            }
        }
    }

    /// Marks the calling thread finished, wakes joiners, records any
    /// violation it carried, and hands the baton on (or reports the
    /// deadlock of the remaining threads).
    pub(crate) fn finish(&self, me: usize, violation: Option<String>) {
        let mut st = self.lock();
        st.threads[me] = Run::Finished;
        st.finished += 1;
        for r in st.threads.iter_mut() {
            if *r == Run::Joining(me) {
                *r = Run::Runnable;
            }
        }
        if let Some(msg) = violation {
            self.fail(&mut st, msg);
        }
        if !st.free_run && st.finished < st.threads.len() {
            match self.decide(&mut st, me, false) {
                Some(next) => st.active = next,
                None => self.fail(
                    &mut st,
                    "deadlock: the remaining model threads are all blocked".into(),
                ),
            }
        }
        self.cond.notify_all();
    }

    /// Driver side: parks until every registered thread has finished.
    fn wait_all_finished(&self) {
        let mut st = self.lock();
        while st.finished < st.threads.len() || st.threads.is_empty() {
            st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        self.lock()
            .handles
            .iter_mut()
            .filter_map(Option::take)
            .collect()
    }
}

/// Extracts a violation message from a caught panic payload. The teardown
/// sentinel is not a violation.
pub(crate) fn violation_message(payload: &(dyn std::any::Any + Send)) -> Option<String> {
    if payload.downcast_ref::<StopExecution>().is_some() {
        return None;
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return Some((*s).to_string());
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return Some(s.clone());
    }
    Some("model thread panicked with a non-string payload".to_string())
}

/// Installs (once, process-wide) a panic hook that silences the teardown
/// sentinel; every other panic goes to the previously installed hook.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<StopExecution>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Spawns one model thread: registers it, launches the OS thread, and
/// wires the catch-unwind/finish protocol. Returns the thread's index.
pub(crate) fn spawn_model_thread<F>(exec: &StdArc<Execution>, body: F) -> usize
where
    F: FnOnce() + Send + 'static,
{
    let idx = exec.register();
    let exec2 = StdArc::clone(exec);
    let handle = std::thread::Builder::new()
        .name(format!("loom-{idx}"))
        .spawn(move || {
            install(Ctx {
                exec: StdArc::clone(&exec2),
                me: idx,
            });
            exec2.wait_for_baton(idx);
            let result = panic::catch_unwind(panic::AssertUnwindSafe(body));
            let violation = result.as_ref().err().and_then(|e| violation_message(&**e));
            exec2.finish(idx, violation);
            uninstall();
        })
        .expect("failed to spawn a model thread");
    exec.store_handle(idx, handle);
    idx
}

/// Exploration limits and the entry point for a model run.
///
/// The defaults (preemption bound 2, 10 000 DFS executions, 2 000 random
/// executions) are sized for component-level models of a handful of
/// threads; tighten or loosen per test.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum preemptive context switches per execution (`None` =
    /// unbounded, i.e. plain exhaustive search). Forced switches — a
    /// thread blocking or finishing — are always free.
    pub preemption_bound: Option<usize>,
    /// DFS execution budget before falling back to random exploration.
    pub max_dfs_executions: usize,
    /// Random executions to run after the DFS budget is spent (0 =
    /// report incomplete immediately).
    pub random_executions: usize,
    /// Seed for the random fallback (exploration stays deterministic).
    pub seed: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: Some(2),
            max_dfs_executions: 10_000,
            random_executions: 2_000,
            seed: 0x1bf5_ca1e,
        }
    }
}

/// Outcome of an exploration that found no violation.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Executions (distinct schedules) actually run.
    pub executions: usize,
    /// `true` when the DFS exhausted every schedule within the preemption
    /// bound — a proof over that space. `false` means the budget ran out
    /// and the tail of the space was only sampled randomly.
    pub complete: bool,
}

/// A violation found by the checker, with the schedule that produced it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The panic/assertion message, or a deadlock/nondeterminism report.
    pub message: String,
    /// Executions run up to and including the failing one.
    pub executions: usize,
    /// The failing schedule as the sequence of branch-point picks.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model violation after {} execution(s): {} (schedule {:?})",
            self.executions, self.message, self.schedule
        )
    }
}

impl std::error::Error for Violation {}

impl Builder {
    /// Explores the closure's interleavings. Returns `Ok` with a report
    /// when no schedule within the explored space produced a violation,
    /// `Err` with the first violation found otherwise.
    ///
    /// # Panics
    /// Panics when called from inside another model run (models do not
    /// nest).
    pub fn check<F>(&self, f: F) -> Result<Report, Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(
            current().is_none(),
            "loom models do not nest: Builder::check called from a model thread"
        );
        install_quiet_hook();
        struct DecrementOnDrop;
        impl Drop for DecrementOnDrop {
            fn drop(&mut self) {
                MODELS_ACTIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        MODELS_ACTIVE.fetch_add(1, Ordering::SeqCst);
        let _active = DecrementOnDrop;
        let f = StdArc::new(f);

        let mut trace: Vec<Choice> = Vec::new();
        let mut executions = 0usize;
        let mut rng: Option<Box<StdRng>> = None;
        loop {
            let mode = match rng.take() {
                None => Explore::Dfs,
                Some(r) => Explore::Random(r),
            };
            let random_mode = matches!(mode, Explore::Random(_));
            let exec = StdArc::new(Execution::new(
                std::mem::take(&mut trace),
                mode,
                self.preemption_bound,
            ));
            let body = {
                let f = StdArc::clone(&f);
                move || f()
            };
            spawn_model_thread(&exec, body);
            exec.wait_all_finished();
            for h in exec.take_handles() {
                let _ = h.join();
            }
            executions += 1;

            let exec = StdArc::try_unwrap(exec)
                .unwrap_or_else(|_| unreachable!("all model threads were reaped"));
            let st = exec.state.into_inner().unwrap_or_else(|e| e.into_inner());
            if let Some(message) = st.failure {
                return Err(Violation {
                    message,
                    executions,
                    schedule: st.schedule.trace.iter().map(|c| c.pick).collect(),
                });
            }
            trace = st.schedule.trace;
            if random_mode {
                if executions >= self.max_dfs_executions + self.random_executions {
                    return Ok(Report {
                        executions,
                        complete: false,
                    });
                }
                rng = match st.schedule.mode {
                    Explore::Random(r) => Some(r),
                    Explore::Dfs => unreachable!("random execution kept its generator"),
                };
                trace.clear();
            } else {
                if !advance(&mut trace) {
                    return Ok(Report {
                        executions,
                        complete: true,
                    });
                }
                if executions >= self.max_dfs_executions {
                    if self.random_executions == 0 {
                        return Ok(Report {
                            executions,
                            complete: false,
                        });
                    }
                    rng = Some(Box::new(StdRng::seed_from_u64(self.seed)));
                    trace.clear();
                }
            }
        }
    }
}

/// Moves `trace` to the depth-first next schedule: bump the deepest choice
/// with an untried option, drop everything after it. Returns `false` when
/// the space is exhausted.
fn advance(trace: &mut Vec<Choice>) -> bool {
    while let Some(last) = trace.last_mut() {
        if last.pick + 1 < last.options.len() {
            last.pick += 1;
            return true;
        }
        trace.pop();
    }
    false
}
