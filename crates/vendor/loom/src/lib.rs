//! Vendored loom-style deterministic concurrency model checker.
//!
//! Offline, dependency-free stand-in for the `loom` crate, built for this
//! workspace's concurrency-correctness harness. It provides instrumented
//! drop-in versions of the `std` primitives the service stack uses —
//! [`sync::Mutex`], [`sync::RwLock`], [`sync::Arc`], [`sync::atomic`],
//! [`thread::spawn`] — and a driver ([`model`] / [`explore`] /
//! [`Builder`]) that runs a closure under **every** thread interleaving
//! within a bounded schedule space:
//!
//! * one OS thread per model thread, exactly one admitted at a time, with
//!   a schedule point before every instrumented operation;
//! * bounded-preemption exhaustive DFS over scheduling choices (CHESS
//!   style, default bound 2), falling back to seeded-random exploration
//!   when the DFS budget runs out;
//! * violations (panics, failed assertions, deadlocks) reported with the
//!   schedule that produced them.
//!
//! All shims are **dual-mode**: outside a model run they delegate straight
//! to `std::sync` (one relaxed atomic load of overhead), so code built on
//! them runs normally in production and ordinary tests, and model tests
//! execute under plain `cargo test` with no special `RUSTFLAGS`.
//!
//! ```
//! use loom::sync::{Arc, Mutex};
//!
//! // Two racing increments through a mutex: every interleaving is safe.
//! let report = loom::explore(|| {
//!     let n = Arc::new(Mutex::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = loom::thread::spawn(move || {
//!         *n2.lock().unwrap() += 1;
//!     });
//!     *n.lock().unwrap() += 1;
//!     t.join().unwrap();
//! })
//! .unwrap();
//! assert!(report.complete);
//! ```
//!
//! Scope: the checker linearizes every instrumented operation, so it
//! explores all interleavings of sequentially-consistent executions; weak
//! memory orderings are not modeled. Model closures must behave
//! deterministically apart from scheduling (no wall-clock, no ambient
//! randomness such as hash-map iteration order influencing which locks are
//! taken) — the checker detects divergence during schedule replay and
//! reports it as a violation rather than exploring unsoundly.

mod rt;
pub mod sync;
pub mod thread;

pub use rt::{Builder, Report, Violation};

/// Explores `f` under the default [`Builder`] and panics on the first
/// violation — the loom-compatible entry point for `#[test]` functions.
///
/// # Panics
/// Panics with the violation (message + failing schedule) if any explored
/// interleaving panics, fails an assertion, or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(violation) = Builder::default().check(f) {
        panic!("{violation}");
    }
}

/// Explores `f` under the default [`Builder`], returning the [`Report`] or
/// the first [`Violation`]. Use this form to assert that a seeded bug *is*
/// caught.
///
/// # Errors
/// Returns the first violation found, with the schedule that produced it.
pub fn explore<F>(f: F) -> Result<Report, Violation>
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}
