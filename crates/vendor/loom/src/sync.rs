//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Every type here is **dual-mode**: outside a model run (the common
//! case — production code, ordinary tests) each operation is a single
//! relaxed atomic load away from the bare `std::sync` equivalent, with
//! identical semantics including poisoning. Inside [`crate::model`] /
//! [`crate::Builder::check`], every acquisition, `Arc` clone/drop and
//! atomic access becomes a schedule point the checker interleaves.
//!
//! Lock data always lives in the underlying `std` primitive, so poisoning
//! works unmodified: a model thread that panics while holding a guard
//! poisons the lock exactly as `std` would.

pub mod atomic;

mod arc;
mod mutex;
mod rwlock;

pub use arc::Arc;
pub use mutex::{Mutex, MutexGuard};
pub use rwlock::{RwLock, RwLockReadGuard, RwLockWriteGuard};

// The error/result vocabulary is shared with `std` so callers can move
// between the instrumented and plain types without code changes.
pub use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};
