//! Self-tests for the vendored model checker: the checker must find known
//! bugs (teeth) and must certify known-correct code (no false positives).

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex, RwLock};
use loom::{explore, Builder};

/// The classic lost update: two unsynchronized read-modify-write threads.
/// A single preemption between load and store loses one increment, so the
/// default bound (2) must find it.
#[test]
fn finds_lost_update_race() {
    let violation = explore(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = loom::thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost");
    })
    .expect_err("the lost-update race must be found");
    assert!(
        violation.message.contains("an increment was lost"),
        "unexpected violation: {violation}"
    );
    assert!(!violation.schedule.is_empty());
}

/// The same counter guarded by a mutex passes, and the DFS terminates with
/// an exhaustiveness certificate.
#[test]
fn certifies_locked_counter() {
    let report = explore(|| {
        let n = Arc::new(Mutex::new(0usize));
        let n2 = Arc::clone(&n);
        let t = loom::thread::spawn(move || {
            *n2.lock().unwrap() += 1;
        });
        *n.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*n.lock().unwrap(), 2);
    })
    .expect("a mutex-guarded counter has no violations");
    assert!(report.complete, "small model must be searched exhaustively");
    assert!(report.executions > 1, "more than one interleaving explored");
}

/// Opposite lock-order acquisition: the checker must drive the two threads
/// into the AB/BA deadlock and report it as such.
#[test]
fn finds_lock_order_deadlock() {
    let violation = explore(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = loom::thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    })
    .expect_err("the AB/BA deadlock must be found");
    assert!(
        violation.message.contains("deadlock"),
        "unexpected violation: {violation}"
    );
}

/// Reader/writer protocol through an RwLock: a reader can never observe a
/// torn pair because the writer updates both halves under one write guard.
#[test]
fn certifies_rwlock_paired_writes() {
    let report = explore(|| {
        let pair = Arc::new(RwLock::new((0usize, 0usize)));
        let p2 = Arc::clone(&pair);
        let writer = loom::thread::spawn(move || {
            for i in 1..3usize {
                let mut g = p2.write().unwrap();
                g.0 = i;
                g.1 = i;
            }
        });
        let g = pair.read().unwrap();
        assert_eq!(g.0, g.1, "torn read: {:?}", *g);
        drop(g);
        writer.join().unwrap();
    })
    .expect("paired writes under one guard cannot tear");
    assert!(report.complete);
}

/// With a preemption bound of 0 the scheduler may only switch when a
/// thread blocks or finishes, so each thread's read-modify-write runs
/// atomically and the lost update is — by design — out of scope. This
/// pins the bound semantics the default bound relies on.
#[test]
fn preemption_bound_zero_excludes_preemptive_races() {
    let report = Builder {
        preemption_bound: Some(0),
        ..Builder::default()
    }
    .check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = loom::thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    })
    .expect("bound 0 admits no preemption, so the race is unreachable");
    assert!(report.complete);
}

/// Starving the DFS (budget 1) forces the seeded-random fallback, which
/// must still find the race — and deterministically, seed being fixed.
#[test]
fn random_fallback_finds_the_race() {
    let run = || {
        Builder {
            max_dfs_executions: 1,
            random_executions: 2_000,
            ..Builder::default()
        }
        .check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let t = loom::thread::spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost");
        })
        .expect_err("random fallback must find the race")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.executions, b.executions, "fixed seed => same discovery");
    assert_eq!(a.schedule, b.schedule);
}

/// Exactly-once toy model of the flush tombstone: two threads race to
/// flush, the "check, then mark" window makes double flush reachable.
#[test]
fn finds_double_flush_without_tombstone_guard() {
    let violation = explore(|| {
        let flushed = Arc::new(Mutex::new(false));
        let count = Arc::new(AtomicUsize::new(0));
        let flush = |flushed: &Mutex<bool>, count: &AtomicUsize| {
            let done = *flushed.lock().unwrap();
            if !done {
                // BUG under test: the mark happens in a second critical
                // section, so both racers can observe `done == false`.
                count.fetch_add(1, Ordering::SeqCst);
                *flushed.lock().unwrap() = true;
            }
        };
        let (f2, c2) = (Arc::clone(&flushed), Arc::clone(&count));
        let t = loom::thread::spawn(move || flush(&f2, &c2));
        flush(&flushed, &count);
        t.join().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 1, "flushed more than once");
    })
    .expect_err("the double flush must be found");
    assert!(violation.message.contains("flushed more than once"));
}

/// The corrected protocol — test-and-set under one guard — passes.
#[test]
fn certifies_flush_with_tombstone_guard() {
    let report = explore(|| {
        let flushed = Arc::new(Mutex::new(false));
        let count = Arc::new(AtomicUsize::new(0));
        let flush = |flushed: &Mutex<bool>, count: &AtomicUsize| {
            let mut g = flushed.lock().unwrap();
            if !*g {
                *g = true;
                count.fetch_add(1, Ordering::SeqCst);
            }
        };
        let (f2, c2) = (Arc::clone(&flushed), Arc::clone(&count));
        let t = loom::thread::spawn(move || flush(&f2, &c2));
        flush(&flushed, &count);
        t.join().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    })
    .expect("test-and-set under one guard flushes exactly once");
    assert!(report.complete);
}

/// Spawn/join value plumbing, nested spawn, and `Arc::try_unwrap` once
/// every clone is dropped.
#[test]
fn join_returns_values_and_arcs_unwrap() {
    let report = explore(|| {
        let data = Arc::new(Mutex::new(Vec::new()));
        let d2 = Arc::clone(&data);
        let t = loom::thread::spawn(move || {
            d2.lock().unwrap().push(1);
            let d3 = loom::thread::spawn(move || {
                d2.lock().unwrap().push(2);
                7usize
            });
            d3.join().unwrap()
        });
        assert_eq!(t.join().unwrap(), 7);
        let v = Arc::try_unwrap(data)
            .expect("all clones dropped after join")
            .into_inner()
            .unwrap();
        assert_eq!(v, vec![1, 2]);
    })
    .expect("spawn/join plumbing is violation-free");
    assert!(report.complete);
}

/// Outside any model run the shims are plain std: they work on ordinary
/// threads with no scheduler present.
#[test]
fn shims_work_outside_a_model() {
    let n = Arc::new(Mutex::new(0usize));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let n = Arc::clone(&n);
            loom::thread::spawn(move || {
                for _ in 0..100 {
                    *n.lock().unwrap() += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*n.lock().unwrap(), 400);

    let rw = RwLock::new(5usize);
    assert_eq!(*rw.read().unwrap(), 5);
    *rw.write().unwrap() = 6;
    assert_eq!(rw.into_inner().unwrap(), 6);

    let a = AtomicUsize::new(1);
    assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(a.into_inner(), 3);
}
