//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this workspace vendors
//! a miniature serde: instead of the visitor architecture, [`Serialize`]
//! maps a value onto an owned JSON-like [`Value`] tree and [`Deserialize`]
//! maps back. `serde_json` (also vendored) renders and parses that tree.
//! The `#[derive(Serialize, Deserialize)]` macros in `serde_derive` cover
//! exactly the shapes this workspace uses: named-field structs, unit
//! structs, and enums with unit or named-field variants (externally tagged,
//! like upstream serde's default).

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// Serialization: project `self` onto a [`Value`] tree.
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Deserialization: reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree; errors carry a human-readable path-free
    /// message (good enough for the workspace's error surfaces).
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// A deserialization error message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Convenience constructor.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::msg(format!("expected unsigned integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::msg(format!("expected integer, got {}", v.kind()))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::msg(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::msg(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg(format!(
                "expected single-char string, got {s:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of {N}, got {len}")))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(DeError::msg(format!(
                        "expected {}-tuple, got array of {}", ARITY, items.len()
                    ))),
                    other => Err(DeError::msg(format!("expected array, got {}", other.kind()))),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Support code for the derive macros — not a public API.
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Reads one named field of an object, treating a missing member as
    /// `null` (so `Option` fields tolerate omission).
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
        match v.get(name) {
            Some(x) => T::from_value(x).map_err(|e| DeError::msg(format!("field `{name}`: {e}"))),
            None => T::from_value(&Value::Null)
                .map_err(|_| DeError::msg(format!("missing field `{name}`"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&2.0f64.to_value()).unwrap(),
            Some(2.0)
        );
    }

    #[test]
    fn container_roundtrips() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (9, -2.0)];
        let tree = v.to_value();
        assert_eq!(Vec::<(u32, f64)>::from_value(&tree).unwrap(), v);
        let pair: (usize, usize) = (3, 4);
        assert_eq!(
            <(usize, usize)>::from_value(&pair.to_value()).unwrap(),
            pair
        );
    }

    #[test]
    fn arc_roundtrips_transparently() {
        // Arc serializes as its pointee (the shared feature matrices of the
        // retrieval stack must persist identically to plain vectors).
        let shared = std::sync::Arc::new(vec![1.0f64, -2.5]);
        let tree = shared.to_value();
        assert_eq!(tree, vec![1.0f64, -2.5].to_value());
        let back = std::sync::Arc::<Vec<f64>>::from_value(&tree).unwrap();
        assert_eq!(*back, *shared);
    }

    #[test]
    fn signed_unsigned_cross_coercion() {
        // A JSON parser yields U64 for "5" even when the target is i64.
        assert_eq!(i64::from_value(&Value::U64(5)).unwrap(), 5);
        assert_eq!(u64::from_value(&Value::I64(5)).unwrap(), 5);
        assert!(u64::from_value(&Value::I64(-5)).is_err());
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(f64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<u8>::from_value(&Value::Bool(true)).is_err());
        assert!(<(u8, u8)>::from_value(&Value::Array(vec![Value::U64(1)])).is_err());
    }
}
