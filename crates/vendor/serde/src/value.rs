//! The JSON-like value tree shared by `serde` and `serde_json`.

/// An owned JSON-like document. Object member order is preserved (a `Vec`
/// of pairs, not a map — collections here are small and ordered output is
/// deterministic).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A non-negative integer literal.
    U64(u64),
    /// A negative integer literal.
    I64(i64),
    /// A floating-point literal (or a non-finite number rendered as
    /// `null` on output).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Numeric view as `u64`, coercing from `I64` when non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Numeric view as `i64`, coercing from `U64` when in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Numeric view as `f64`. Integers coerce; `null` reads back as `NaN`
    /// (the writer renders non-finite floats as `null`, so this closes the
    /// round-trip).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable object member lookup, inserting `Null` when absent (the
    /// behavior `v["key"] = ...` relies on).
    pub fn get_or_insert(&mut self, key: &str) -> &mut Value {
        let Value::Object(members) = self else {
            panic!("cannot index into a {} with a string key", self.kind());
        };
        if let Some(pos) = members.iter().position(|(k, _)| k == key) {
            return &mut members[pos].1;
        }
        members.push((key.to_owned(), Value::Null));
        &mut members.last_mut().expect("just pushed").1
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        self.get_or_insert(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_indexing_reads_and_writes() {
        let mut v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v["a"], Value::U64(1));
        assert_eq!(v["missing"], Value::Null);
        v["a"] = Value::U64(2);
        v["b"] = Value::Bool(true);
        assert_eq!(v["a"], Value::U64(2));
        assert_eq!(v["b"], Value::Bool(true));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::U64(7).as_i64(), Some(7));
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::U64(3).as_f64(), Some(3.0));
        assert!(Value::Null.as_f64().unwrap().is_nan());
    }
}
