//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Written against `proc_macro` alone (no `syn`/`quote` in the offline
//! build), so it parses the token stream by hand. Supported shapes — which
//! are exactly the shapes this workspace derives on:
//!
//! * structs with named fields (generic parameters allowed, unbounded),
//! * unit structs,
//! * enums whose variants are unit or named-field (externally tagged:
//!   `"Variant"` for unit, `{"Variant": {..fields..}}` for fields).
//!
//! Unsupported shapes (tuple structs/variants, unions, lifetimes, where
//! clauses) produce a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Type parameter identifiers, in declaration order.
    generics: Vec<String>,
    kind: ItemKind,
}

enum ItemKind {
    UnitStruct,
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for a unit variant, `Some(fields)` for named fields.
    fields: Option<Vec<String>>,
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error tokens")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    if keyword != "struct" && keyword != "enum" {
        return Err(format!("cannot derive for `{keyword}` items"));
    }

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i)?;

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            let kind = if keyword == "struct" {
                ItemKind::Struct(parse_named_fields(&body)?)
            } else {
                ItemKind::Enum(parse_variants(&body)?)
            };
            Ok(Item {
                name,
                generics,
                kind,
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && keyword == "struct" => Ok(Item {
            name,
            generics,
            kind: ItemKind::UnitStruct,
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Err(format!(
            "tuple struct `{name}` is not supported by the vendored serde derive"
        )),
        other => Err(format!("unexpected item body: {other:?}")),
    }
}

/// Advances past `#[...]` attributes (incl. doc comments) and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `<A, B, ...>` after the item name, returning parameter names.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    let open = matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<');
    if !open {
        return Ok(params);
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expecting_param = true;
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                expecting_param = true;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                return Err(
                    "lifetime parameters are not supported by the vendored serde derive"
                        .to_string(),
                );
            }
            Some(TokenTree::Ident(id)) if depth == 1 && expecting_param => {
                let s = id.to_string();
                if s == "const" {
                    return Err(
                        "const generics are not supported by the vendored serde derive".to_string(),
                    );
                }
                params.push(s);
                expecting_param = false;
            }
            None => return Err("unterminated generic parameter list".to_string()),
            _ => {}
        }
        *i += 1;
    }
    Ok(params)
}

/// Parses `name: Type, ...` field lists (attributes and visibility allowed
/// per field). Commas nested in `(...)`/`[...]` are inside atomic groups;
/// commas inside `<...>` are tracked via angle depth.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0usize;
        while i < body.len() {
            match body.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_variants(body: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Some(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple variant `{name}` is not supported by the vendored serde derive"
                ));
            }
            _ => None,
        };
        if let Some(TokenTree::Punct(p)) = body.get(i) {
            if p.as_char() == '=' {
                return Err(format!(
                    "explicit discriminant on `{name}` is not supported by the vendored serde derive"
                ));
            }
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

/// `impl<A: Bound, B: Bound>` + `Name<A, B>` strings for the item.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", item.name, item.generics.join(", ")),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, ty) = impl_header(item, "::serde::Serialize");
    let body = match &item.kind {
        ItemKind::UnitStruct => "::serde::Value::Object(::std::vec::Vec::new())".to_string(),
        ItemKind::Struct(fields) => {
            let members: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))",
                        f
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                members.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "Self::{} => ::serde::Value::Str({:?}.to_string()),",
                        v.name, v.name
                    ),
                    Some(fields) => {
                        let bindings = fields.join(", ");
                        let members: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), ::serde::Serialize::to_value({f}))",
                                    f
                                )
                            })
                            .collect();
                        format!(
                            "Self::{} {{ {} }} => ::serde::Value::Object(::std::vec![({:?}.to_string(), ::serde::Value::Object(::std::vec![{}]))]),",
                            v.name,
                            bindings,
                            v.name,
                            members.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, ty) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => format!(
            "match __v {{\n\
             ::serde::Value::Object(_) | ::serde::Value::Null => ::std::result::Result::Ok(Self),\n\
             __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\n\
                 \"expected object for {name}, got {{}}\", __other.kind()))),\n\
             }}"
        ),
        ItemKind::Struct(fields) => {
            let members: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__v, {f:?})?,"))
                .collect();
            format!(
                "if !::std::matches!(__v, ::serde::Value::Object(_)) {{\n\
                 return ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\n\
                     \"expected object for {name}, got {{}}\", __v.kind())));\n\
                 }}\n\
                 ::std::result::Result::Ok(Self {{ {} }})",
                members.join(" ")
            )
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok(Self::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{:?} => ::std::result::Result::Ok(Self::{}),",
                        v.name, v.name
                    ),
                    Some(fields) => {
                        let members: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::__private::field(__inner, {f:?})?,"))
                            .collect();
                        format!(
                            "{:?} => ::std::result::Result::Ok(Self::{} {{ {} }}),",
                            v.name,
                            v.name,
                            members.join(" ")
                        )
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\n\
                     \"unknown {name} variant {{__other:?}}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__members) if __members.len() == 1 => {{\n\
                 let (__tag, __inner) = &__members[0];\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n\
                 {tagged}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\n\
                     \"unknown {name} variant {{__other:?}}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\n\
                     \"expected {name} variant, got {{}}\", __other.kind()))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
                name = name,
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {ty} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => error(&e),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => error(&e),
    }
}
