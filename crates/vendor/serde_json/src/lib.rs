//! Offline stand-in for `serde_json`: renders and parses the vendored
//! [`serde::Value`] tree as JSON text.
//!
//! Covered surface: [`to_vec`], [`to_vec_pretty`], [`to_string`],
//! [`to_string_pretty`], [`from_slice`], [`from_str`], the [`json!`] macro
//! for literals, and [`Value`] with `v["key"]` indexing. Numbers round-trip
//! through Rust's shortest-representation float formatting; non-finite
//! floats render as `null` (JSON has no NaN/∞), which reads back as `NaN`.

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value as 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes a value as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes a value as pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses a value from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from a literal. Supports the subset this workspace
/// uses: any single expression convertible via `Serialize`.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($other:expr) => {
        $crate::__private_to_value(&$other)
    };
}

/// Implementation detail of [`json!`].
pub fn __private_to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write_int(out, &n.to_string());
        }
        Value::I64(n) => {
            let _ = write_int(out, &n.to_string());
        }
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            items.len(),
            out,
            indent,
            level,
            |item, out, indent, level| {
                write_value(item, out, indent, level);
            },
            '[',
            ']',
        ),
        Value::Object(members) => write_seq(
            members.iter(),
            members.len(),
            out,
            indent,
            level,
            |(k, val), out, indent, level| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level);
            },
            '{',
            '}',
        ),
    }
}

fn write_int(out: &mut String, digits: &str) -> std::fmt::Result {
    out.push_str(digits);
    Ok(())
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest round-trip representation and always
        // includes a decimal point or exponent, keeping floats
        // distinguishable from integers.
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I, T>(
    items: I,
    len: usize,
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    mut write_item: impl FnMut(T, &mut String, Option<usize>, usize),
    open: char,
    close: char,
) where
    I: Iterator<Item = T>,
{
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(item, out, indent, level + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's ASCII-ish payloads.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = Value::Object(vec![
            ("n".into(), Value::U64(42)),
            ("neg".into(), Value::I64(-3)),
            ("x".into(), Value::F64(1.5)),
            ("s".into(), Value::Str("a\"b\\c\n".into())),
            (
                "arr".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("obj".into(), Value::Object(vec![])),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Array(vec![
            Value::U64(1),
            Value::Object(vec![("k".into(), Value::Str("v".into()))]),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_precision_roundtrips() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, -2.5e17, f64::MIN_POSITIVE] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn non_finite_floats_render_null_and_read_nan() {
        let text = to_string(&f64::NAN).unwrap();
        assert_eq!(text, "null");
        let back: f64 = from_str(&text).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("[1] trailing").is_err());
    }

    #[test]
    fn json_macro_wraps_literals() {
        assert_eq!(json!(99u32), Value::U64(99));
        assert_eq!(json!(null), Value::Null);
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Value::Str("héllo ↔ wörld".into());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }
}
