//! Offline stand-in for `criterion`.
//!
//! Provides the bench-source surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`criterion_group!`]/[`criterion_main!`], and
//! `Bencher::iter` — backed by a simple wall-clock harness: a warm-up
//! call, then timed batches, reporting the mean time per iteration to
//! stdout. No statistics, plots, or baselines; the point is that
//! `cargo bench` runs and prints comparable numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group; the group prefixes its benchmarks' names.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A benchmark group (named prefix + per-group sample size).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        run_bench(&name, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function name` or `function/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, filled by `iter`.
    result_ns: f64,
}

impl Bencher {
    /// Times the routine: one warm-up call, then `samples` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        // Scale iterations so very fast routines get a measurable batch.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            ((Duration::from_millis(2).as_nanos() / probe.as_nanos()).max(1) as usize).min(10_000);

        let mut total = Duration::ZERO;
        let mut iters = 0usize;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            total += start.elapsed();
            iters += per_sample;
        }
        self.result_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        result_ns: f64::NAN,
    };
    f(&mut bencher);
    if bencher.result_ns.is_nan() {
        println!("bench {name:<40} (no measurement: Bencher::iter not called)");
    } else {
        println!(
            "bench {name:<40} {:>14} ns/iter",
            format_ns(bencher.result_ns)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else if ns >= 1000.0 {
        let v = ns as u64;
        let mut s = v.to_string();
        let mut insert = s.len() as isize - 3;
        while insert > 0 {
            s.insert(insert as usize, ',');
            insert -= 3;
        }
        s
    } else {
        format!("{ns:.1}")
    }
}

/// Collects benchmark functions into one runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_a_number() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("p", 7), &7usize, |b, &p| {
            b.iter(|| black_box(p * 2))
        });
        g.finish();
    }

    #[test]
    fn thousands_separators() {
        assert_eq!(format_ns(999.4), "999.4");
        assert_eq!(format_ns(1234.0), "1,234");
        assert_eq!(format_ns(1_234_567.0), "1,234,567");
    }
}
