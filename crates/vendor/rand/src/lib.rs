//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the subset of the `rand` 0.8 API it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ (not ChaCha12 as in upstream `StdRng`); all determinism
//! guarantees in this workspace are per-seed within this implementation,
//! which is all the reproduction protocol requires.

pub mod rngs;
pub mod seq;

/// A source of random `u64` words. The supertrait of [`Rng`].
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// `u64` bits → uniform `f64` in `[0, 1)` (53-bit mantissa method).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// `u64` bits → uniform `f32` in `[0, 1)` (24-bit mantissa method).
#[inline]
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// An element type [`Rng::gen_range`] can sample uniformly. One generic
/// [`SampleRange`] impl per range shape keeps type inference identical to
/// upstream rand (a float literal range unifies with the use site's float
/// width).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Bounds are pre-validated by the caller.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// A range that knows how to sample itself — the glue behind
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if inclusive && span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = if inclusive { span + 1 } else { span };
                let off = reduce_u64(rng.next_u64(), span);
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

int_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Maps 64 random bits onto `[0, span)` by 128-bit widening multiply
/// (Lemire reduction without the rejection step — the bias is below
/// 2⁻⁶⁴·span and irrelevant for simulation purposes).
#[inline]
fn reduce_u64(bits: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((bits as u128 * span as u128) >> 64) as u64
}

macro_rules! float_sample_uniform {
    ($($t:ty => $unit:ident),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // For floats the closed/open distinction is immaterial at
                // 53-bit resolution; both forms use lo + u·(hi−lo).
                lo + $unit(rng.next_u64()) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32 => unit_f32, f64 => unit_f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX))
            .count();
        assert!(same < 5, "different seeds should diverge");
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = rng.gen_range(0usize..4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..4 reachable");
        for _ in 0..200 {
            let v = rng.gen_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&v));
            let w = rng.gen_range(-3isize..3);
            assert!((-3..3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..=3_300).contains(&hits), "got {hits} hits at p=0.3");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }
}
