//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
/// seeded through SplitMix64. Fast, 256-bit state, passes BigCrush —
/// plenty for simulation; not cryptographic (neither is anything that
/// relies on it here).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        // xoshiro requires nonzero state; SplitMix64 guarantees it even for
        // seed 0.
        let rng = StdRng::seed_from_u64(0);
        assert!(rng.s.iter().any(|&w| w != 0));
    }

    #[test]
    fn words_look_uniformish() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // 64_000 bits, expect ~32_000 ones.
        assert!((30_000..34_000).contains(&ones), "bit balance {ones}");
    }
}
