//! Sequence utilities (`SliceRandom`).

use crate::{Rng, RngCore};

/// Slice shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_ne!(a, (0..50).collect::<Vec<_>>(), "50 elements should move");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
