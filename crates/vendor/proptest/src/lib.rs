//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of the proptest API it uses: the [`proptest!`] macro (with an
//! optional `#![proptest_config(..)]` header), range strategies over
//! numeric types, [`collection::vec`], [`collection::btree_set`], and
//! [`bool::ANY`]. Cases are generated from a seed derived from the test
//! name, so failures reproduce deterministically. There is **no
//! shrinking** — a failing case panics with the generated inputs left to
//! the assertion message.

pub mod bool;
pub mod collection;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Re-exported so `proptest::prelude::*` provides everything the tests
/// reference.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Number of cases to run per property.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Cases per property (upstream default: 256; this stand-in defaults
    /// lower because the suite builds image corpora inside fixtures).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A value generator. The vendored analogue of proptest's `Strategy`;
/// generation is direct (no value trees, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Builds the deterministic per-test RNG. Public for the macro, not a
/// user API.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// The property-test macro. Accepts one optional
/// `#![proptest_config(expr)]` header followed by `fn` items whose
/// arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts inside a property (no early-return semantics in this stand-in —
/// a failure panics immediately, which fails the case and the test).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(flag in crate::bool::ANY, s in crate::collection::btree_set(0u32..10, 0..5)) {
            let _ = flag;
            prop_assert!(s.len() < 5);
            prop_assert!(s.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        use rand::Rng;
        let a: Vec<u64> = {
            let mut r = crate::test_rng("x");
            (0..5).map(|_| r.gen_range(0u64..1000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::test_rng("x");
            (0..5).map(|_| r.gen_range(0u64..1000)).collect()
        };
        assert_eq!(a, b);
    }
}
