//! Boolean strategies.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Uniform `true`/`false`.
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// The `proptest::bool::ANY` strategy.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}
