//! Collection strategies (`vec`, `btree_set`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;

/// A size specification: an exact length or a half-open range of lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.lo + 1 == self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `BTreeSet`s. The requested size is an upper shape
/// bound: duplicates collapse, as in upstream proptest.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Clone, Copy, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
